package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"testing"
)

func decodeJSONL(t *testing.T, r io.Reader) []Event {
	t.Helper()
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out
		} else if err != nil {
			t.Fatalf("decode: %v", err)
		}
		out = append(out, ev)
	}
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	defer SetEmitter(nil)
	var buf bytes.Buffer
	SetEmitter(NewJSONLEmitter(&buf))

	root := StartSpan(nil, "root")
	root.SetAttr("kind", "test")
	child := StartSpan(root, "child")
	grand := StartSpan(child, "grand")
	grand.End()
	child.EndErr(fmt.Errorf("boom"))
	root.End()

	evs := decodeJSONL(t, &buf)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	// Events emit at End, so completion order is grand, child, root.
	byName := map[string]Event{}
	for _, e := range evs {
		if e.Type != "span" {
			t.Fatalf("event type = %q, want span", e.Type)
		}
		byName[e.Name] = e
	}
	r, c, g := byName["root"], byName["child"], byName["grand"]
	if r.Parent != 0 {
		t.Fatalf("root parent = %d, want 0", r.Parent)
	}
	if c.Parent != r.Span || g.Parent != c.Span {
		t.Fatalf("nesting broken: root=%d child=(%d←%d) grand=(%d←%d)", r.Span, c.Span, c.Parent, g.Span, g.Parent)
	}
	if r.Attrs["kind"] != "test" {
		t.Fatalf("root attrs = %v", r.Attrs)
	}
	if c.Attrs["error"] != "boom" {
		t.Fatalf("EndErr must record the error attr, got %v", c.Attrs)
	}
	// Monotonic timestamps: children start no earlier than their parents and
	// end no later (parents end last), and durations are non-negative.
	end := func(e Event) int64 { return e.StartNS + e.DurNS }
	for name, e := range byName {
		if e.DurNS < 0 {
			t.Fatalf("%s: negative duration %d", name, e.DurNS)
		}
	}
	if c.StartNS < r.StartNS || g.StartNS < c.StartNS {
		t.Fatal("child started before its parent")
	}
	if end(g) > end(c) || end(c) > end(r) {
		t.Fatal("child ended after its parent")
	}
}

func TestStartSpanNilWhenTracingOff(t *testing.T) {
	SetEmitter(nil)
	sp := StartSpan(nil, "free")
	if sp != nil {
		t.Fatal("StartSpan must return nil when no emitter is installed")
	}
	// Everything on a nil span is a no-op.
	sp.SetAttr("k", 1)
	sp.EndErr(nil)
	sp.End()
	if sp.ID() != 0 {
		t.Fatal("nil span id must be 0")
	}
	if child := StartSpan(sp, "child-of-nil"); child != nil {
		t.Fatal("child of a nil span with tracing off must be nil")
	}
}

func TestSpanEndIdempotentAndAttrAfterEndDropped(t *testing.T) {
	defer SetEmitter(nil)
	ring := NewRingEmitter(8)
	SetEmitter(ring)
	sp := StartSpan(nil, "once")
	sp.End()
	sp.SetAttr("late", true) // dropped
	sp.End()                 // no second event
	sp.EndErr(fmt.Errorf("late error"))
	if ring.Len() != 1 {
		t.Fatalf("got %d events, want 1", ring.Len())
	}
	if attrs := ring.Events()[0].Attrs; attrs != nil {
		t.Fatalf("late attrs must be dropped, got %v", attrs)
	}
}

func TestSpanConcurrentAnnotateAndEnd(t *testing.T) {
	defer SetEmitter(nil)
	SetEmitter(NewRingEmitter(64))
	// A supervisor may End a span while the worker is still annotating it;
	// run under -race to verify the locking.
	for i := 0; i < 50; i++ {
		sp := StartSpan(nil, "race")
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); sp.SetAttr("k", 1) }()
		go func() { defer wg.Done(); sp.End() }()
		wg.Wait()
	}
}

func TestRingEmitterWrap(t *testing.T) {
	ring := NewRingEmitter(3)
	for i := 0; i < 5; i++ {
		ring.Emit(Event{Name: fmt.Sprintf("e%d", i)})
	}
	if ring.Len() != 3 {
		t.Fatalf("len = %d, want 3", ring.Len())
	}
	evs := ring.Events()
	want := []string{"e2", "e3", "e4"}
	for i, w := range want {
		if evs[i].Name != w {
			t.Fatalf("events = %v, want oldest-first %v", evs, want)
		}
	}
}

func TestRingEmitterPartial(t *testing.T) {
	ring := NewRingEmitter(4)
	ring.Emit(Event{Name: "a"})
	ring.Emit(Event{Name: "b"})
	if ring.Len() != 2 {
		t.Fatalf("len = %d, want 2", ring.Len())
	}
	evs := ring.Events()
	if len(evs) != 2 || evs[0].Name != "a" || evs[1].Name != "b" {
		t.Fatalf("events = %v", evs)
	}
}
