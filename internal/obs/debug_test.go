package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeDebugMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pn_demo_total", "Demo.").Add(42)
	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, "pn_demo_total 42") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	code, body = get(t, "http://"+srv.Addr()+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status=%d body=%q", code, body[:min(len(body), 200)])
	}

	// The heap profile endpoint must serve real pprof data.
	code, body = get(t, "http://"+srv.Addr()+"/debug/pprof/heap?debug=1")
	if code != http.StatusOK || !strings.Contains(body, "heap profile") {
		t.Fatalf("/debug/pprof/heap status=%d", code)
	}
}

func TestMetricsHandlerResolvesGlobalLate(t *testing.T) {
	defer SetGlobal(nil)
	SetGlobal(nil)
	srv, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// No registry yet: empty exposition, not a crash.
	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK || strings.TrimSpace(body) != "" {
		t.Fatalf("pre-registry /metrics = (%d, %q), want empty 200", code, body)
	}

	// Installed after the server started: must be picked up per request.
	reg := NewRegistry()
	reg.Counter("pn_late_total", "").Inc()
	SetGlobal(reg)
	_, body = get(t, "http://"+srv.Addr()+"/metrics")
	if !strings.Contains(body, "pn_late_total 1") {
		t.Fatalf("late-installed registry not served:\n%s", body)
	}
}
