package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one completed span, serialised as a single JSON line. Timestamps
// are derived from one process-local monotonic epoch, so within a process
// events carry strictly consistent ordering: a child's start never precedes
// its parent's, and End times respect call order even across goroutines.
// Trace and Proc tie events from different processes into one distributed
// timeline: span IDs are only unique per process, so (Proc, Span) is the
// globally unique key.
type Event struct {
	Type    string         `json:"type"` // "span", or a marker kind ("flight", "resume")
	Name    string         `json:"name"`
	Trace   string         `json:"trace,omitempty"` // 32-hex trace ID shared across processes
	Proc    string         `json:"proc,omitempty"`  // emitting process, host:pid
	Span    uint64         `json:"span"`
	Parent  uint64         `json:"parent,omitempty"` // 0 for root spans
	StartNS int64          `json:"start_unix_ns"`
	DurNS   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Emitter receives completed span events. Implementations must be safe for
// concurrent use; the pipeline emits from worker goroutines.
type Emitter interface {
	Emit(Event)
}

type emitterRef struct{ e Emitter }

var globalEmitter atomic.Pointer[emitterRef]

// SetEmitter installs (or, with nil, removes) the process-wide span emitter.
// While no emitter is installed, StartSpan returns nil spans and tracing is
// allocation-free.
func SetEmitter(e Emitter) {
	if e == nil {
		globalEmitter.Store(nil)
		return
	}
	globalEmitter.Store(&emitterRef{e: e})
}

// CurrentEmitter returns the process-wide emitter, or nil when tracing is off.
func CurrentEmitter() Emitter {
	if ref := globalEmitter.Load(); ref != nil {
		return ref.e
	}
	return nil
}

var spanIDs atomic.Uint64

// Span IDs start from a per-process random base so that spans minted by
// different processes in the same distributed trace cannot collide. Sequential
// counting from the base keeps allocation at zero per span.
func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		spanIDs.Store(binary.LittleEndian.Uint64(b[:]))
	}
}

// epoch anchors all span timestamps to a single time.Now() carrying a
// monotonic reading: now() = epoch + monotonic elapsed, so wall-clock steps
// cannot produce non-monotonic or negative-duration events.
var epoch = time.Now()

func tnow() time.Time { return epoch.Add(time.Since(epoch)) }

// SpanContext is the portable identity of a span — what crosses a process
// boundary in a traceparent header. Span is the remote parent's ID; a zero
// Span with a non-empty Trace joins the trace as a root.
type SpanContext struct {
	Trace string // 32 lowercase hex chars
	Span  uint64
}

// NewTraceID mints a random 32-hex trace identifier.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fallback: derive from the span counter; still unique per process.
		binary.LittleEndian.PutUint64(b[:8], spanIDs.Add(1))
		binary.LittleEndian.PutUint64(b[8:], uint64(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b[:])
}

// Traceparent renders the context in W3C traceparent layout:
// "00-<32 hex trace>-<16 hex span>-01". Empty when the context has no trace.
func (sc SpanContext) Traceparent() string {
	if sc.Trace == "" {
		return ""
	}
	return fmt.Sprintf("00-%s-%016x-01", sc.Trace, sc.Span)
}

// ParseTraceparent parses a W3C-style traceparent header produced by
// Traceparent. Returns ok=false on any malformed input.
func ParseTraceparent(s string) (SpanContext, bool) {
	// 2 (version) + 1 + 32 (trace) + 1 + 16 (span) + 1 + 2 (flags)
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	trace := s[3:35]
	if _, err := hex.DecodeString(trace); err != nil {
		return SpanContext{}, false
	}
	span, err := hex.DecodeString(s[36:52])
	if err != nil {
		return SpanContext{}, false
	}
	return SpanContext{Trace: trace, Span: binary.BigEndian.Uint64(span)}, true
}

type spanCtxKey struct{}

// ContextWithSpanContext attaches sc to ctx so transport clients can inject
// it into outgoing requests.
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanContextFrom extracts a SpanContext previously attached with
// ContextWithSpanContext.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Trace != ""
}

// Span is one timed operation. Create with StartSpan, finish with End (or
// EndErr); attributes attached before End are carried on the emitted Event.
// All methods are safe on a nil receiver — a nil span is the "tracing off"
// value — and safe for concurrent use (a supervisor may End a span whose
// worker goroutine is still trying to annotate it; the first End wins and
// later calls are no-ops).
type Span struct {
	em     Emitter
	name   string
	trace  string
	id     uint64
	parent uint64
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// StartSpan opens a span under parent. A nil parent starts a root span on the
// process-wide emitter; if that is nil too (tracing off), StartSpan returns a
// nil span and the whole subtree is free.
func StartSpan(parent *Span, name string) *Span {
	var em Emitter
	var pid uint64
	var trace string
	if parent != nil {
		em = parent.em
		pid = parent.id
		trace = parent.trace
	} else {
		em = CurrentEmitter()
	}
	if em == nil {
		return nil
	}
	return &Span{
		em:     em,
		name:   name,
		trace:  trace,
		id:     spanIDs.Add(1),
		parent: pid,
		start:  tnow(),
	}
}

// StartSpanIn opens a root span on an explicit emitter, joining the trace
// described by pctx (typically parsed from an incoming traceparent header).
// An empty pctx.Trace mints a fresh trace ID. A nil em falls back to the
// process-wide emitter; if that is nil too, the span is nil and free.
func StartSpanIn(em Emitter, pctx SpanContext, name string) *Span {
	if em == nil {
		em = CurrentEmitter()
	}
	if em == nil {
		return nil
	}
	trace := pctx.Trace
	if trace == "" {
		trace = NewTraceID()
	}
	return &Span{
		em:     em,
		name:   name,
		trace:  trace,
		id:     spanIDs.Add(1),
		parent: pctx.Span,
		start:  tnow(),
	}
}

// StartSpanOn opens a child of parent that emits to em instead of the
// parent's emitter — used to tee an attempt's subtree into a flight-recorder
// ring while keeping its place in the trace. A nil em returns a nil span.
func StartSpanOn(em Emitter, parent *Span, name string) *Span {
	if em == nil {
		return nil
	}
	var pid uint64
	var trace string
	if parent != nil {
		pid = parent.id
		trace = parent.trace
	}
	return &Span{
		em:     em,
		name:   name,
		trace:  trace,
		id:     spanIDs.Add(1),
		parent: pid,
		start:  tnow(),
	}
}

// ID returns the span's process-unique id (0 on a nil receiver).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Context returns the span's portable identity for propagation across a
// process boundary. Zero on a nil receiver.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.trace, Span: s.id}
}

// Emitter returns the emitter this span reports to (nil on a nil receiver).
func (s *Span) Emitter() Emitter {
	if s == nil {
		return nil
	}
	return s.em
}

// SetAttr attaches a key/value attribute. Values must be JSON-marshalable.
// Calls after End are dropped.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
}

// End closes the span and emits its Event. Idempotent: only the first call
// emits.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := tnow()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.em.Emit(Event{
		Type:    "span",
		Name:    s.name,
		Trace:   s.trace,
		Span:    s.id,
		Parent:  s.parent,
		StartNS: s.start.UnixNano(),
		DurNS:   int64(end.Sub(s.start)),
		Attrs:   attrs,
	})
}

// EndErr records err (when non-nil) as the "error" attribute and ends the
// span.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.SetAttr("error", err.Error())
	}
	s.End()
}

// JSONLEmitter serialises events as JSON lines to an io.Writer (typically a
// file). Emissions are serialised by a mutex; encoding errors are dropped —
// tracing must never fail the pipeline.
type JSONLEmitter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLEmitter wraps w. The caller owns w's lifetime (close it after the
// last span has ended).
func NewJSONLEmitter(w io.Writer) *JSONLEmitter {
	return &JSONLEmitter{enc: json.NewEncoder(w)}
}

// Emit implements Emitter.
func (e *JSONLEmitter) Emit(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	_ = e.enc.Encode(ev)
}

// RingEmitter keeps the last N events in memory — the in-process flight
// recorder used by tests, examples, and post-mortem dumps.
type RingEmitter struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

// NewRingEmitter returns a ring holding the most recent capacity events.
func NewRingEmitter(capacity int) *RingEmitter {
	if capacity < 1 {
		capacity = 1
	}
	return &RingEmitter{buf: make([]Event, capacity)}
}

// Emit implements Emitter.
func (e *RingEmitter) Emit(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.buf[e.next] = ev
	e.next++
	if e.next == len(e.buf) {
		e.next = 0
		e.full = true
	}
}

// Events returns the retained events, oldest first.
func (e *RingEmitter) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.full {
		return append([]Event(nil), e.buf[:e.next]...)
	}
	out := make([]Event, 0, len(e.buf))
	out = append(out, e.buf[e.next:]...)
	out = append(out, e.buf[:e.next]...)
	return out
}

// Len returns the number of retained events.
func (e *RingEmitter) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.full {
		return len(e.buf)
	}
	return e.next
}

type teeEmitter struct{ ems []Emitter }

func (t *teeEmitter) Emit(ev Event) {
	for _, e := range t.ems {
		e.Emit(ev)
	}
}

// Tee fans each event out to every non-nil emitter. Nil arguments are
// skipped; with zero live emitters Tee returns nil, with one it returns that
// emitter unwrapped. Callers must pass concrete nils (typed-nil interface
// values are not filtered).
func Tee(ems ...Emitter) Emitter {
	live := make([]Emitter, 0, len(ems))
	for _, e := range ems {
		if e != nil {
			live = append(live, e)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &teeEmitter{ems: live}
}
