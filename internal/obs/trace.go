package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one completed span, serialised as a single JSON line. Timestamps
// are derived from one process-local monotonic epoch, so within a process
// events carry strictly consistent ordering: a child's start never precedes
// its parent's, and End times respect call order even across goroutines.
type Event struct {
	Type    string         `json:"type"` // always "span"
	Name    string         `json:"name"`
	Span    uint64         `json:"span"`
	Parent  uint64         `json:"parent,omitempty"` // 0 for root spans
	StartNS int64          `json:"start_unix_ns"`
	DurNS   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Emitter receives completed span events. Implementations must be safe for
// concurrent use; the pipeline emits from worker goroutines.
type Emitter interface {
	Emit(Event)
}

type emitterRef struct{ e Emitter }

var globalEmitter atomic.Pointer[emitterRef]

// SetEmitter installs (or, with nil, removes) the process-wide span emitter.
// While no emitter is installed, StartSpan returns nil spans and tracing is
// allocation-free.
func SetEmitter(e Emitter) {
	if e == nil {
		globalEmitter.Store(nil)
		return
	}
	globalEmitter.Store(&emitterRef{e: e})
}

// CurrentEmitter returns the process-wide emitter, or nil when tracing is off.
func CurrentEmitter() Emitter {
	if ref := globalEmitter.Load(); ref != nil {
		return ref.e
	}
	return nil
}

var spanIDs atomic.Uint64

// epoch anchors all span timestamps to a single time.Now() carrying a
// monotonic reading: now() = epoch + monotonic elapsed, so wall-clock steps
// cannot produce non-monotonic or negative-duration events.
var epoch = time.Now()

func tnow() time.Time { return epoch.Add(time.Since(epoch)) }

// Span is one timed operation. Create with StartSpan, finish with End (or
// EndErr); attributes attached before End are carried on the emitted Event.
// All methods are safe on a nil receiver — a nil span is the "tracing off"
// value — and safe for concurrent use (a supervisor may End a span whose
// worker goroutine is still trying to annotate it; the first End wins and
// later calls are no-ops).
type Span struct {
	em     Emitter
	name   string
	id     uint64
	parent uint64
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// StartSpan opens a span under parent. A nil parent starts a root span on the
// process-wide emitter; if that is nil too (tracing off), StartSpan returns a
// nil span and the whole subtree is free.
func StartSpan(parent *Span, name string) *Span {
	var em Emitter
	var pid uint64
	if parent != nil {
		em = parent.em
		pid = parent.id
	} else {
		em = CurrentEmitter()
	}
	if em == nil {
		return nil
	}
	return &Span{
		em:     em,
		name:   name,
		id:     spanIDs.Add(1),
		parent: pid,
		start:  tnow(),
	}
}

// ID returns the span's process-unique id (0 on a nil receiver).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr attaches a key/value attribute. Values must be JSON-marshalable.
// Calls after End are dropped.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
}

// End closes the span and emits its Event. Idempotent: only the first call
// emits.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := tnow()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.em.Emit(Event{
		Type:    "span",
		Name:    s.name,
		Span:    s.id,
		Parent:  s.parent,
		StartNS: s.start.UnixNano(),
		DurNS:   int64(end.Sub(s.start)),
		Attrs:   attrs,
	})
}

// EndErr records err (when non-nil) as the "error" attribute and ends the
// span.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.SetAttr("error", err.Error())
	}
	s.End()
}

// JSONLEmitter serialises events as JSON lines to an io.Writer (typically a
// file). Emissions are serialised by a mutex; encoding errors are dropped —
// tracing must never fail the pipeline.
type JSONLEmitter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLEmitter wraps w. The caller owns w's lifetime (close it after the
// last span has ended).
func NewJSONLEmitter(w io.Writer) *JSONLEmitter {
	return &JSONLEmitter{enc: json.NewEncoder(w)}
}

// Emit implements Emitter.
func (e *JSONLEmitter) Emit(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	_ = e.enc.Encode(ev)
}

// RingEmitter keeps the last N events in memory — the in-process flight
// recorder used by tests, examples, and post-mortem dumps.
type RingEmitter struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

// NewRingEmitter returns a ring holding the most recent capacity events.
func NewRingEmitter(capacity int) *RingEmitter {
	if capacity < 1 {
		capacity = 1
	}
	return &RingEmitter{buf: make([]Event, capacity)}
}

// Emit implements Emitter.
func (e *RingEmitter) Emit(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.buf[e.next] = ev
	e.next++
	if e.next == len(e.buf) {
		e.next = 0
		e.full = true
	}
}

// Events returns the retained events, oldest first.
func (e *RingEmitter) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.full {
		return append([]Event(nil), e.buf[:e.next]...)
	}
	out := make([]Event, 0, len(e.buf))
	out = append(out, e.buf[e.next:]...)
	out = append(out, e.buf[:e.next]...)
	return out
}

// Len returns the number of retained events.
func (e *RingEmitter) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.full {
		return len(e.buf)
	}
	return e.next
}
