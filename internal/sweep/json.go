package sweep

import (
	"encoding/json"
	"errors"
	"time"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shooting"
)

// Error kinds carried on the wire so a decoded PointResult still classifies
// with errors.Is against the pipeline's sentinel errors.
const (
	errKindCanceled = "canceled"
	errKindBudget   = "budget"
	errKindPanic    = "panic"
	errKindOther    = "error"
)

// RemoteError is a pipeline error reconstructed from its JSON form: the
// original message plus a kind tag that preserves errors.Is matching for
// budget.ErrCanceled, budget.ErrBudgetExceeded and ErrModelPanic across the
// round trip. The concrete error chain (wrapped stage errors, panic stacks)
// does not survive serialisation; the message text does.
type RemoteError struct {
	Msg  string `json:"msg"`
	Kind string `json:"kind,omitempty"`
}

// Error implements error.
func (e *RemoteError) Error() string { return e.Msg }

// Is maps the wire kind back onto the package sentinels.
func (e *RemoteError) Is(target error) bool {
	switch e.Kind {
	case errKindCanceled:
		return target == budget.ErrCanceled
	case errKindBudget:
		return target == budget.ErrBudgetExceeded
	case errKindPanic:
		return target == ErrModelPanic
	}
	return false
}

// EncodeError converts any pipeline error to its wire form (nil stays nil):
// the message plus the kind tag that keeps errors.Is classification working
// after a round trip. The service layer uses it to report job and point
// errors over the API with their budget/panic identity intact.
func EncodeError(err error) *RemoteError { return encodeErr(err) }

// encodeErr converts an error to its wire form (nil stays nil).
func encodeErr(err error) *RemoteError {
	if err == nil {
		return nil
	}
	kind := errKindOther
	switch {
	case errors.Is(err, budget.ErrCanceled):
		kind = errKindCanceled
	case errors.Is(err, budget.ErrBudgetExceeded):
		kind = errKindBudget
	case errors.Is(err, ErrModelPanic):
		kind = errKindPanic
	}
	return &RemoteError{Msg: err.Error(), Kind: kind}
}

// decodeErr converts a wire error back to an error (nil stays nil).
func decodeErr(w *RemoteError) error {
	if w == nil {
		return nil
	}
	return w
}

// attemptJSON is the wire form of an Attempt.
type attemptJSON struct {
	Rung     int           `json:"rung"`
	RungName string        `json:"rung_name"`
	Error    *RemoteError  `json:"error,omitempty"`
	Trace    core.Trace    `json:"trace"`
	Wall     time.Duration `json:"wall_ns"`
	Flight   []obs.Event   `json:"flight,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (a Attempt) MarshalJSON() ([]byte, error) {
	return json.Marshal(attemptJSON{
		Rung:     a.Rung,
		RungName: a.RungName,
		Error:    encodeErr(a.Err),
		Trace:    a.Trace,
		Wall:     a.Wall,
		Flight:   a.Flight,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (a *Attempt) UnmarshalJSON(data []byte) error {
	var w attemptJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*a = Attempt{
		Rung:     w.Rung,
		RungName: w.RungName,
		Err:      decodeErr(w.Error),
		Trace:    w.Trace,
		Wall:     w.Wall,
		Flight:   w.Flight,
	}
	return nil
}

// pointResultJSON is the wire form of a PointResult. On success Result.PSS
// and PointResult.PSS alias the same object; the wire form elides the
// duplicate (pss_is_result) and restores the aliasing on decode.
type pointResultJSON struct {
	Index       int           `json:"index"`
	Name        string        `json:"name"`
	Result      *core.Result  `json:"result,omitempty"`
	Error       *RemoteError  `json:"error,omitempty"`
	PSS         *shooting.PSS `json:"pss,omitempty"`
	PSSIsResult bool          `json:"pss_is_result,omitempty"`
	Attempts    []Attempt     `json:"attempts,omitempty"`
	Wall        time.Duration `json:"wall_ns"`
	Cached      bool          `json:"cached,omitempty"`
}

// MarshalJSON implements json.Marshaler. Together with UnmarshalJSON it makes
// a PointResult JSON round-trip loss-free up to error-chain identity: typed
// budget/panic classification and every numeric field survive; wrapped error
// values are flattened to their message (see RemoteError).
func (r PointResult) MarshalJSON() ([]byte, error) {
	w := pointResultJSON{
		Index:    r.Index,
		Name:     r.Name,
		Result:   r.Result,
		Error:    encodeErr(r.Err),
		Attempts: r.Attempts,
		Wall:     r.Wall,
		Cached:   r.Cached,
	}
	if r.Result != nil && r.PSS == r.Result.PSS {
		w.PSSIsResult = true
	} else {
		w.PSS = r.PSS
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *PointResult) UnmarshalJSON(data []byte) error {
	var w pointResultJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = PointResult{
		Index:    w.Index,
		Name:     w.Name,
		Result:   w.Result,
		Err:      decodeErr(w.Error),
		PSS:      w.PSS,
		Attempts: w.Attempts,
		Wall:     w.Wall,
		Cached:   w.Cached,
	}
	if w.PSSIsResult && w.Result != nil {
		r.PSS = w.Result.PSS
	}
	return nil
}
