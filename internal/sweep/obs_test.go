package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/osc"
	"repro/internal/shooting"
)

// noisePanic panics in Noise — which the pipeline only evaluates during the
// c-quadrature, after shooting and Floquet have both succeeded. The panic
// therefore lands as late as possible, with the maximum amount of completed
// work to preserve.
type noisePanic struct{ osc.Hopf }

func (m *noisePanic) Noise(x, dst []float64) {
	panic("noise table evaluated out of range")
}

// A panic in the last pipeline stage must not cost the point the diagnostics
// of the stages that completed: the attempt's Trace carries the full shooting
// and Floquet records, and the converged PSS survives into the PointResult.
func TestPanicAttemptKeepsCompletedStageTraces(t *testing.T) {
	pts := []Point{{
		Name:   "late-panic",
		System: &noisePanic{osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}},
		X0:     []float64{1, 0.1},
		TGuess: 1.05,
	}}
	r := Run(pts, nil)[0]
	if r.OK() {
		t.Fatal("panicking model reported success")
	}
	if !errors.Is(r.Err, ErrModelPanic) {
		t.Fatalf("want ErrModelPanic, got %v", r.Err)
	}
	if len(r.Attempts) != 1 {
		t.Fatalf("panic must not be retried: %d attempts", len(r.Attempts))
	}
	tr := r.Attempts[0].Trace
	if tr.Shooting.Iters == 0 || tr.Shooting.Wall <= 0 {
		t.Fatalf("completed shooting trace lost on panic: %+v", tr.Shooting)
	}
	if tr.Shooting.Residual <= 0 || tr.Shooting.Residual > 1e-9 {
		t.Fatalf("converged residual not recorded: %g", tr.Shooting.Residual)
	}
	if tr.Floquet.Steps <= 0 || tr.Floquet.AdjointWall <= 0 {
		t.Fatalf("completed floquet trace lost on panic: %+v", tr.Floquet)
	}
	if !r.Degraded() {
		t.Fatalf("converged PSS lost on quadrature panic: PSS=%v err=%v", r.PSS, r.Err)
	}
	if math.Abs(r.PSS.T-1) > 1e-6 {
		t.Fatalf("preserved PSS period %g, want ≈1", r.PSS.T)
	}
}

// An attempt timeout that trips mid-shooting must still yield a trace showing
// how far the attempt got: the cooperative model returns with a typed budget
// error and the shooting stage's partial wall time recorded.
func TestAttemptTimeoutKeepsPartialTrace(t *testing.T) {
	pts := []Point{{
		Name:   "slow",
		System: &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02},
		X0:     []float64{1, 0.1},
		TGuess: 1.05,
		// Heavy enough that the transient alone far outlasts the timeout.
		Opts: &core.Options{Shooting: &shooting.Options{StepsPerPeriod: 500000, Transient: 200}},
	}}
	r := Run(pts, &Config{AttemptTimeout: 25 * time.Millisecond})[0]
	if r.OK() {
		t.Fatal("point beat a 25ms attempt timeout")
	}
	if !errors.Is(r.Err, budget.ErrBudgetExceeded) {
		t.Fatalf("want wrapped ErrBudgetExceeded, got %v", r.Err)
	}
	if len(r.Attempts) != 1 {
		t.Fatalf("budget cut-off must not be retried: %d attempts", len(r.Attempts))
	}
	att := r.Attempts[0]
	if att.Wall <= 0 {
		t.Fatal("attempt wall time not recorded on timeout")
	}
	if att.Trace.Shooting.Wall <= 0 {
		t.Fatalf("partial shooting trace lost on timeout: %+v", att.Trace.Shooting)
	}
}

// The engine's own metrics must reflect a finished batch: per-outcome point
// counts, per-rung attempt counts, a drained queue-depth gauge, and one
// latency observation per point.
func TestSweepMetricsRecorded(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	pts := hopfGrid(3)
	results := Run(pts, &Config{Workers: 2})
	for i, r := range results {
		if !r.OK() {
			t.Fatalf("point %d failed: %v", i, r.Err)
		}
	}

	s := reg.Snapshot()
	if got := s.Counter("pn_sweep_points_total", "ok"); got != 3 {
		t.Fatalf("ok points = %d, want 3", got)
	}
	if got := s.Counter("pn_sweep_attempts_total", "base"); got != 3 {
		t.Fatalf("base attempts = %d, want 3", got)
	}
	for _, g := range s.Gauges {
		if g.Name == "pn_sweep_queue_depth" && g.Value != 0 {
			t.Fatalf("queue depth after the batch = %g, want 0", g.Value)
		}
	}
	for _, h := range s.Histograms {
		if h.Name == "pn_sweep_point_seconds" && h.Count != 3 {
			t.Fatalf("point latency observations = %d, want 3", h.Count)
		}
	}
}

// decodeSpans parses a JSONL stream back into events.
func decodeSpans(t *testing.T, r io.Reader) []obs.Event {
	t.Helper()
	dec := json.NewDecoder(r)
	var evs []obs.Event
	for {
		var ev obs.Event
		if err := dec.Decode(&ev); err == io.EOF {
			return evs
		} else if err != nil {
			t.Fatalf("decode span stream: %v", err)
		}
		evs = append(evs, ev)
	}
}

// A real sweep traced through the JSONL emitter must round-trip into a
// well-formed tree: sweep.Run → sweep.point → sweep.attempt →
// core.Characterise → {shooting.Find, floquet.Analyze, quadrature}, with every
// child contained in its parent's time interval.
func TestSweepSpanTreeRoundTripsThroughJSONL(t *testing.T) {
	var buf bytes.Buffer
	obs.SetEmitter(obs.NewJSONLEmitter(&buf))
	defer obs.SetEmitter(nil)

	pts := hopfGrid(2)
	results := Run(pts, &Config{Workers: 2})
	obs.SetEmitter(nil)
	for i, r := range results {
		if !r.OK() {
			t.Fatalf("point %d failed: %v", i, r.Err)
		}
	}

	evs := decodeSpans(t, &buf)
	byID := make(map[uint64]obs.Event, len(evs))
	byName := make(map[string][]obs.Event)
	for _, ev := range evs {
		if ev.Type != "span" {
			t.Fatalf("unexpected event type %q", ev.Type)
		}
		if ev.DurNS < 0 {
			t.Fatalf("negative duration on %q: %d", ev.Name, ev.DurNS)
		}
		byID[ev.Span] = ev
		byName[ev.Name] = append(byName[ev.Name], ev)
	}
	if n := len(byName["sweep.Run"]); n != 1 {
		t.Fatalf("%d sweep.Run roots, want 1", n)
	}
	if root := byName["sweep.Run"][0]; root.Parent != 0 {
		t.Fatalf("sweep.Run has parent %d, want root", root.Parent)
	}
	checks := []struct {
		name   string
		parent string
		n      int
	}{
		{"sweep.point", "sweep.Run", 2},
		{"sweep.attempt", "sweep.point", 2},
		{"core.Characterise", "sweep.attempt", 2},
		{"shooting.Find", "core.Characterise", 2},
		{"floquet.Analyze", "core.Characterise", 2},
		{"quadrature", "core.Characterise", 2},
	}
	for _, c := range checks {
		got := byName[c.name]
		if len(got) != c.n {
			t.Fatalf("%d %q spans, want %d", len(got), c.name, c.n)
		}
		for _, ev := range got {
			p, ok := byID[ev.Parent]
			if !ok {
				t.Fatalf("%q span %d: parent %d never emitted", c.name, ev.Span, ev.Parent)
			}
			if p.Name != c.parent {
				t.Fatalf("%q span parented under %q, want %q", c.name, p.Name, c.parent)
			}
			// Containment: the child's interval sits inside the parent's.
			if ev.StartNS < p.StartNS {
				t.Fatalf("%q starts %dns before its parent", c.name, p.StartNS-ev.StartNS)
			}
			if end, pend := ev.StartNS+ev.DurNS, p.StartNS+p.DurNS; end > pend {
				t.Fatalf("%q ends %dns after its parent", c.name, end-pend)
			}
		}
	}
	// Attempt spans carry their rung; quadrature its point count.
	for _, ev := range byName["sweep.attempt"] {
		if ev.Attrs["rung"] != "base" {
			t.Fatalf("attempt span attrs = %v, want rung=base", ev.Attrs)
		}
	}
	for _, ev := range byName["quadrature"] {
		if n, ok := ev.Attrs["points"].(float64); !ok || n <= 0 {
			t.Fatalf("quadrature span attrs = %v, want a positive points count", ev.Attrs)
		}
	}
}
