package sweep

import (
	"math"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/osc"
)

// keyedHopfPoint builds one cacheable Hopf point; identical omega ⇒
// identical key.
func keyedHopfPoint(name string, omega float64) Point {
	h := &osc.Hopf{Lambda: 1, Omega: omega, Sigma: 0.02}
	x0 := []float64{1, 0.1}
	tg := h.Period() * 1.05
	var opts *core.Options
	return Point{
		Name:   name,
		System: h,
		X0:     x0,
		TGuess: tg,
		Opts:   opts,
		Key: cache.CharacterisationKey("hopf",
			map[string]float64{"lambda": 1, "omega": omega, "sigma": 0.02},
			x0, tg, opts.FingerprintFields()),
	}
}

func TestCacheSecondBatchIsACacheSweep(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pts := []Point{keyedHopfPoint("a", 2), keyedHopfPoint("b", 3), keyedHopfPoint("c", 4)}
	cfg := &Config{Workers: 2, Cache: store}

	first := Run(pts, cfg)
	for i, r := range first {
		if !r.OK() || r.Cached {
			t.Fatalf("first run point %d: ok=%v cached=%v err=%v", i, r.OK(), r.Cached, r.Err)
		}
	}
	chars := reg.Snapshot().Counter("pn_core_characterisations_total", "ok")
	if chars != 3 {
		t.Fatalf("first run characterisations = %d, want 3", chars)
	}

	second := Run(pts, cfg)
	for i, r := range second {
		if !r.OK() || !r.Cached {
			t.Fatalf("second run point %d: ok=%v cached=%v err=%v", i, r.OK(), r.Cached, r.Err)
		}
		if len(r.Attempts) != 0 {
			t.Fatalf("cached point %d ran %d attempts", i, len(r.Attempts))
		}
		if math.Abs(r.Result.C-first[i].Result.C) != 0 {
			t.Fatalf("cached c=%g differs from computed c=%g", r.Result.C, first[i].Result.C)
		}
		if r.PSS == nil || r.PSS != r.Result.PSS {
			t.Fatal("cached PointResult.PSS must alias Result.PSS")
		}
	}
	s := reg.Snapshot()
	if got := s.Counter("pn_core_characterisations_total", "ok"); got != chars {
		t.Fatalf("second run invoked the pipeline: %d characterisations, want %d", got, chars)
	}
	if got := s.Counter("pn_sweep_points_total", "cached"); got != 3 {
		t.Fatalf("cached outcome counter = %d, want 3", got)
	}
	if d := s.Gauge("pn_sweep_queue_depth"); d != 0 {
		t.Fatalf("queue depth after cached batch = %g, want 0 (cached short-circuit skipped a decrement?)", d)
	}
}

func TestCacheIdenticalPointsCollapseToOneRun(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = keyedHopfPoint("dup", 2) // all identical ⇒ one key
	}
	results := Run(pts, &Config{Workers: n, Cache: store})
	computed := 0
	for i, r := range results {
		if !r.OK() {
			t.Fatalf("point %d: %v", i, r.Err)
		}
		if !r.Cached {
			computed++
		}
	}
	if computed != 1 {
		t.Fatalf("%d points computed, want exactly 1 (singleflight)", computed)
	}
	if got := reg.Snapshot().Counter("pn_core_characterisations_total", "ok"); got != 1 {
		t.Fatalf("characterisations = %d, want 1", got)
	}
}

func TestCacheOnPointIndicesExactUnderInterleaving(t *testing.T) {
	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-warm half the grid so cached (instant) and computed (slow) points
	// interleave maximally.
	warm := []Point{keyedHopfPoint("w0", 2), keyedHopfPoint("w1", 3)}
	Run(warm, &Config{Cache: store})

	pts := []Point{
		keyedHopfPoint("p0", 2), // cached
		keyedHopfPoint("p1", 5), // computed
		keyedHopfPoint("p2", 3), // cached
		keyedHopfPoint("p3", 6), // computed
	}
	var mu sync.Mutex
	seen := make(map[int]string)
	results := Run(pts, &Config{Workers: 4, Cache: store, OnPoint: func(r PointResult) {
		mu.Lock()
		defer mu.Unlock()
		if prev, dup := seen[r.Index]; dup {
			t.Errorf("index %d reported twice (%q then %q)", r.Index, prev, r.Name)
		}
		seen[r.Index] = r.Name
	}})
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(pts) {
		t.Fatalf("OnPoint fired %d times, want %d", len(seen), len(pts))
	}
	for i, p := range pts {
		if seen[i] != p.Name {
			t.Fatalf("index %d carried name %q, want %q", i, seen[i], p.Name)
		}
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result slot %d has Index %d", i, r.Index)
		}
	}
	if !results[0].Cached || results[1].Cached || !results[2].Cached || results[3].Cached {
		t.Fatalf("cached pattern wrong: %v %v %v %v",
			results[0].Cached, results[1].Cached, results[2].Cached, results[3].Cached)
	}
}

func TestCacheDiskRoundTripServesNewProcess(t *testing.T) {
	dir := t.TempDir()
	s1, err := cache.New(cache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	pts := []Point{keyedHopfPoint("p", 2)}
	first := Run(pts, &Config{Cache: s1})
	if !first[0].OK() {
		t.Fatal(first[0].Err)
	}
	// A fresh store over the same directory models a new process.
	s2, err := cache.New(cache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	second := Run(pts, &Config{Cache: s2})
	if !second[0].OK() || !second[0].Cached {
		t.Fatalf("disk-backed rerun: ok=%v cached=%v err=%v", second[0].OK(), second[0].Cached, second[0].Err)
	}
	if second[0].Result.C != first[0].Result.C {
		t.Fatalf("disk round trip changed c: %g vs %g", second[0].Result.C, first[0].Result.C)
	}
	if got, want := second[0].Result.T(), first[0].Result.T(); got != want {
		t.Fatalf("disk round trip changed T: %g vs %g", got, want)
	}
}
