package sweep

import (
	"encoding/json"
	"fmt"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/dynsys"
	"repro/internal/faultinject"
	"repro/internal/floquet"
	"repro/internal/obs"
	"repro/internal/osc"
	"repro/internal/shooting"
)

// batchKey is the compatibility class of a point for lockstep batching: the
// state dimension plus every base-rung solver knob that the batch kernels
// must run in lockstep. Points with equal keys produce structurally
// identical integration schedules, which is exactly what the SoA kernels
// require.
type batchKey struct {
	dim  int
	so   shooting.Options
	fo   floquet.Options
	quad int
}

// batchKeyOf classifies one point, reporting ok=false when the point cannot
// join a batch (no system, caller-supplied ReusePSS, or a model so hostile
// that merely asking its dimension panics — those keep the fully isolated
// scalar path).
func batchKeyOf(p Point, c *Config) (key batchKey, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	if p.System == nil {
		return batchKey{}, false
	}
	opts := applyRung(p.Opts, c.Ladder[0])
	if opts.ReusePSS != nil {
		return batchKey{}, false
	}
	se := opts.Shooting.Effective()
	se.Trace, se.Budget = nil, nil
	fe := opts.Floquet.Effective()
	fe.Trace, fe.Budget = nil, nil
	return batchKey{dim: p.System.Dim(), so: se, fo: fe, quad: opts.QuadPoints}, true
}

// planUnits partitions the points into worker units: singleton units for the
// scalar path, and groups of up to Config.BatchLanes compatible points for
// the lockstep path. Units are ordered by their first member's input index,
// so scheduling stays deterministic.
func planUnits(points []Point, c *Config) [][]int {
	if c.BatchLanes <= 1 {
		units := make([][]int, len(points))
		for k := range points {
			units[k] = []int{k}
		}
		return units
	}
	groups := make(map[batchKey][]int)
	var units [][]int
	for k, p := range points {
		if key, ok := batchKeyOf(p, c); ok {
			groups[key] = append(groups[key], k)
		} else {
			units = append(units, []int{k})
		}
	}
	for _, idxs := range groups {
		for len(idxs) > c.BatchLanes {
			units = append(units, idxs[:c.BatchLanes])
			idxs = idxs[c.BatchLanes:]
		}
		units = append(units, idxs)
	}
	sort.Slice(units, func(i, j int) bool { return units[i][0] < units[j][0] })
	return units
}

// runBatchUnit resolves one lockstep group: cache pre-check per point, one
// base-rung attempt for the remaining lanes through core.CharacteriseBatch,
// then per-lane continuation — success commits to the cache, a retryable
// failure climbs that point's own scalar ladder from the next rung, and a
// batch-level infrastructure failure (injected fault, panic inside the
// lockstep kernels) falls every lane back to the fully isolated scalar path.
func runBatchUnit(idxs []int, points []Point, c *Config, out []PointResult, attempt func(int, string, Attempt), finalize func(int), rsp *obs.Span) {
	m := sweepMetrics.Get()
	start := time.Now()
	bsp := obs.StartSpan(rsp, "sweep.batch")
	bsp.SetAttr("lanes", len(idxs))
	defer bsp.End()

	scalarFallback := func(live []int) {
		m.batches.With("fallback").Inc()
		bsp.SetAttr("fallback", true)
		for _, k := range live {
			out[k] = runPoint(k, points[k], c, attempt, rsp)
			finalize(k)
		}
	}

	if err := c.Budget.Err(); err != nil {
		for _, k := range idxs {
			out[k] = PointResult{
				Index: k,
				Name:  points[k].Name,
				Err:   fmt.Errorf("sweep: point %q not started: %w", points[k].Name, err),
			}
			finalize(k)
		}
		return
	}

	// The batch-level fault point: an injected failure here exercises the
	// batch→scalar fallback exactly like a real batch infrastructure fault.
	if err := faultinject.Fire(faultinject.SweepBatch); err != nil {
		scalarFallback(idxs)
		return
	}

	// Cache pre-check: points already in the store are served immediately
	// and never join the batch, mirroring the scalar cached path.
	live := make([]int, 0, len(idxs))
	for _, k := range idxs {
		p := points[k]
		if c.Cache != nil && p.Key != "" {
			if payload, hit := c.Cache.Get(p.Key); hit {
				var cr core.Result
				if jerr := json.Unmarshal(payload, &cr); jerr == nil {
					out[k] = PointResult{
						Index:  k,
						Name:   p.Name,
						Result: &cr,
						PSS:    cr.PSS,
						Cached: true,
						Wall:   time.Since(start),
					}
					finalize(k)
					continue
				}
				// Stale or foreign payload: recompute rather than fail.
			}
		}
		live = append(live, k)
	}
	if len(live) == 0 {
		return
	}
	if len(live) == 1 {
		k := live[0]
		out[k] = runPoint(k, points[k], c, attempt, rsp)
		finalize(k)
		return
	}

	be, berr := buildBatchEvaluator(points, live)
	if berr != nil {
		scalarFallback(live)
		return
	}

	// Per-lane budget chain, identical to the scalar attempt: batch budget →
	// point timeout → attempt cancel/timeout. The lane tokens are polled
	// inside the lockstep kernels, so one exhausted point dies alone.
	rung0 := c.Ladder[0]
	type laneCtx struct {
		att     Attempt
		partial core.Partial
		opts    *core.Options
		atTok   *budget.Token
	}
	lcs := make([]*laneCtx, len(live))
	bpoints := make([]core.BatchPoint, len(live))
	var earliest time.Time
	for i, k := range live {
		p := points[k]
		ptTok := c.Budget
		if c.PointTimeout > 0 {
			ptTok = budget.WithTimeout(ptTok, c.PointTimeout)
		}
		atTok, cancel := budget.WithCancel(ptTok)
		defer cancel()
		if c.AttemptTimeout > 0 {
			atTok = budget.WithTimeout(atTok, c.AttemptTimeout)
		}
		if dl, ok := atTok.Deadline(); ok && (earliest.IsZero() || dl.Before(earliest)) {
			earliest = dl
		}
		lc := &laneCtx{att: Attempt{Rung: 0, RungName: rung0.Name}, atTok: atTok}
		lc.opts = applyRung(p.Opts, rung0)
		lc.opts.Trace = &lc.att.Trace
		lc.opts.Budget = atTok
		lc.opts.Partial = &lc.partial
		lc.opts.Span = bsp
		lcs[i] = lc
		bpoints[i] = core.BatchPoint{Sys: p.System, X0: p.X0, TGuess: p.TGuess, Opts: lc.opts}
		m.attempts.With(rung0.Name).Inc()
	}

	type batchOutcome struct {
		results  []*core.Result
		laneErrs []error
		batchErr error
		panicked bool
	}
	ch := make(chan batchOutcome, 1) // buffered: an abandoned goroutine can still exit
	go func() {
		var bo batchOutcome
		defer func() {
			if rec := recover(); rec != nil {
				bo = batchOutcome{
					batchErr: fmt.Errorf("sweep: batch panicked: %v\n%s", rec, debug.Stack()),
					panicked: true,
				}
			}
			ch <- bo
		}()
		bo.results, bo.laneErrs, bo.batchErr = core.CharacteriseBatch(be, bpoints, c.Budget)
	}()

	grace := c.AbandonGrace
	if grace <= 0 {
		grace = defaultAbandonGrace
	}
	var bo batchOutcome
	var timer <-chan time.Time
	if !earliest.IsZero() {
		// Lane deadlines are enforced inside the kernels; the timer is only a
		// backstop against a model that ignores its token entirely.
		tm := time.NewTimer(time.Until(earliest) + grace)
		defer tm.Stop()
		timer = tm.C
	}
	abandoned := false
	select {
	case bo = <-ch:
	case <-timer:
		abandoned = true
	case <-c.Budget.Done():
		gt := time.NewTimer(grace)
		defer gt.Stop()
		select {
		case bo = <-ch:
		case <-gt.C:
			abandoned = true
		}
	}
	wall := time.Since(start)
	if abandoned {
		m.batches.With("abandoned").Inc()
		for i, k := range live {
			cause := lcs[i].atTok.Err()
			if cause == nil {
				cause = budget.ErrCanceled
			}
			m.abandoned.Inc()
			att := lcs[i].att
			att.Wall = wall
			att.Err = fmt.Errorf("sweep: attempt %q on point %q abandoned after %v (model unresponsive to cancellation): %w",
				rung0.Name, points[k].Name, wall.Round(time.Millisecond), cause)
			attempt(k, points[k].Name, att)
			out[k] = PointResult{Index: k, Name: points[k].Name, Attempts: []Attempt{att}, Err: att.Err, Wall: wall}
			finalize(k)
		}
		return
	}

	if bo.batchErr != nil {
		if bo.panicked || !budget.Is(bo.batchErr) {
			// Batch-level infrastructure failure: nothing point-specific was
			// learned, so every lane restarts on the isolated scalar path
			// (where a panicking model becomes that point's own PanicError).
			scalarFallback(live)
			return
		}
		// The whole-batch budget tripped: a typed per-point failure, exactly
		// like a scalar attempt cut off mid-pipeline. Not retryable.
		for i, k := range live {
			att := lcs[i].att
			att.Wall = wall
			cause := lcs[i].atTok.Err()
			if cause == nil {
				cause = bo.batchErr
			}
			att.Err = cause
			attempt(k, points[k].Name, att)
			out[k] = PointResult{Index: k, Name: points[k].Name, Attempts: []Attempt{att}, Err: att.Err, PSS: lcs[i].partial.PSS, Wall: wall}
			finalize(k)
		}
		return
	}

	m.batches.With("ok").Inc()
	for i, k := range live {
		p := points[k]
		lc := lcs[i]
		att := lc.att
		att.Wall = wall
		att.Err = bo.laneErrs[i]
		attempt(k, p.Name, att)
		res := PointResult{Index: k, Name: p.Name, Attempts: []Attempt{att}, Wall: wall}
		if att.Err == nil {
			res.Result = bo.results[i]
			res.PSS = res.Result.PSS
			out[k] = res
			commitCache(c, p, res.Result)
			finalize(k)
			continue
		}
		res.Err = att.Err
		res.PSS = lc.partial.PSS
		if Retryable(att.Err) {
			// Continue this point's own ladder from the next rung; the seed
			// carries the batched attempt's history and partial PSS, so the
			// shooting-reuse fast path applies when only downstream knobs
			// change on the next rung.
			res = continueLadder(k, p, c, attempt, bsp, res, 1, lc.opts, lc.partial.PSS)
			if res.OK() {
				commitCache(c, p, res.Result)
			}
		}
		out[k] = res
		finalize(k)
	}
}

// buildBatchEvaluator vectorises the live points' systems, converting a
// panic from a hostile model into an error so the caller can fall back.
func buildBatchEvaluator(points []Point, live []int) (be dynsys.BatchEvaluator, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			be, err = nil, fmt.Errorf("sweep: building batch evaluator panicked: %v", rec)
		}
	}()
	systems := make([]dynsys.System, len(live))
	for i, k := range live {
		systems[i] = points[k].System
	}
	return osc.BatchSystems(systems)
}

// commitCache stores a freshly computed batched result under the point's
// content key, best effort — the scalar path stores through Cache.Do, the
// batched path through Put; both end up under the same pnfp1 key because
// batching never changes the result.
func commitCache(c *Config, p Point, r *core.Result) {
	if c.Cache == nil || p.Key == "" || r == nil {
		return
	}
	if payload, err := json.Marshal(r); err == nil {
		_ = c.Cache.Put(p.Key, payload)
	}
}
