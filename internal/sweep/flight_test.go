package sweep

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/osc"
)

// lastAttempt returns the final attempt of a point's ladder.
func lastAttempt(t *testing.T, r PointResult) Attempt {
	t.Helper()
	if len(r.Attempts) == 0 {
		t.Fatalf("point %q recorded no attempts", r.Name)
	}
	return r.Attempts[len(r.Attempts)-1]
}

func hasSpan(evs []obs.Event, name string) bool {
	for _, e := range evs {
		if e.Name == name {
			return true
		}
	}
	return false
}

// TestFlightRecorderOnPanic: a panicking model's failed attempt must carry a
// bounded flight dump even with process-wide tracing off.
func TestFlightRecorderOnPanic(t *testing.T) {
	const cap = 16
	results := Run([]Point{{
		Name:   "panicky",
		System: &panicModel{osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}},
		X0:     []float64{3, 0}, // first Eval panics
		TGuess: 1,
	}}, &Config{FlightRecorder: cap})
	r := results[0]
	if !errors.Is(r.Err, ErrModelPanic) {
		t.Fatalf("want ErrModelPanic, got %v", r.Err)
	}
	att := lastAttempt(t, r)
	if len(att.Flight) == 0 {
		t.Fatal("panicking attempt carried no flight dump")
	}
	if len(att.Flight) > cap {
		t.Fatalf("flight dump %d events, cap %d", len(att.Flight), cap)
	}
	if !hasSpan(att.Flight, "sweep.attempt") {
		t.Fatalf("dump misses the attempt span: %+v", att.Flight)
	}
}

// TestFlightRecorderOnTimeout: an attempt cut off by its timeout (the model
// cooperates with cancellation) dumps its ring.
func TestFlightRecorderOnTimeout(t *testing.T) {
	results := Run(hopfGrid(1), &Config{
		FlightRecorder: 32,
		AttemptTimeout: time.Nanosecond,
	})
	r := results[0]
	if !errors.Is(r.Err, budget.ErrBudgetExceeded) {
		t.Fatalf("want wrapped ErrBudgetExceeded, got %v", r.Err)
	}
	att := lastAttempt(t, r)
	if len(att.Flight) == 0 {
		t.Fatal("timed-out attempt carried no flight dump")
	}
	if !hasSpan(att.Flight, "sweep.attempt") {
		t.Fatalf("dump misses the attempt span: %+v", att.Flight)
	}
}

// TestFlightRecorderOnAbandon: a model that ignores cancellation is abandoned
// past AbandonGrace; the synthesised attempt still gets the dump.
func TestFlightRecorderOnAbandon(t *testing.T) {
	results := Run([]Point{{
		Name:   "stuck",
		System: newBlockingModel(t, 3*time.Second),
		X0:     []float64{1, 0.1},
		TGuess: 1.05,
	}}, &Config{
		FlightRecorder: 8,
		AttemptTimeout: 50 * time.Millisecond,
		AbandonGrace:   100 * time.Millisecond,
	})
	r := results[0]
	if !errors.Is(r.Err, budget.ErrBudgetExceeded) {
		t.Fatalf("want wrapped ErrBudgetExceeded, got %v", r.Err)
	}
	att := lastAttempt(t, r)
	if att.Err == nil || len(att.Flight) == 0 {
		t.Fatalf("abandoned attempt carried no flight dump: %+v", att)
	}
	if len(att.Flight) > 8 {
		t.Fatalf("flight dump %d events, cap 8", len(att.Flight))
	}
	if !hasSpan(att.Flight, "sweep.attempt") {
		t.Fatalf("dump misses the attempt span: %+v", att.Flight)
	}
}

// TestFlightRecorderQuietPaths: successes never dump, retryable failures
// never dump (journal bloat), and a zero capacity disables the recorder
// entirely.
func TestFlightRecorderQuietPaths(t *testing.T) {
	results := Run(hopfGrid(1), &Config{FlightRecorder: 16})
	if r := results[0]; !r.OK() || len(lastAttempt(t, r).Flight) != 0 {
		t.Fatalf("successful attempt must not carry a dump: err=%v", r.Err)
	}

	// A hostile-dynamics point fails retryably up the whole ladder; none of
	// the attempts may dump.
	hostile := Point{
		Name:   "hostile",
		System: &osc.Hopf{Lambda: 1e12, Omega: 2 * math.Pi, Sigma: 0.02},
		X0:     []float64{1e150, 1e150},
		TGuess: 1e-12,
	}
	results = Run([]Point{hostile}, &Config{FlightRecorder: 16})
	if r := results[0]; r.OK() {
		t.Fatal("hostile point unexpectedly succeeded")
	} else {
		for i, att := range r.Attempts {
			if budget.Is(att.Err) || errors.Is(att.Err, ErrModelPanic) {
				continue // crash-class: a dump here would be correct
			}
			if len(att.Flight) != 0 {
				t.Fatalf("retryable attempt %d carried a dump: %v", i, att.Err)
			}
		}
	}

	// Recorder off: even a panic carries no dump.
	results = Run([]Point{{
		Name:   "panicky",
		System: &panicModel{osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}},
		X0:     []float64{3, 0},
		TGuess: 1,
	}}, &Config{})
	if att := lastAttempt(t, results[0]); len(att.Flight) != 0 {
		t.Fatal("FlightRecorder=0 must disable dumps")
	}
}

// TestFlightDumpSurvivesJSONRoundTrip: the dump rides the PointResult wire
// form — that is how a worker's crash timeline reaches the coordinator's
// journal.
func TestFlightDumpSurvivesJSONRoundTrip(t *testing.T) {
	results := Run([]Point{{
		Name:   "panicky",
		System: &panicModel{osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}},
		X0:     []float64{3, 0},
		TGuess: 1,
	}}, &Config{FlightRecorder: 16})
	orig := results[0]
	want := lastAttempt(t, orig).Flight
	if len(want) == 0 {
		t.Fatal("precondition: no dump to round-trip")
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back PointResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	got := lastAttempt(t, back).Flight
	if len(got) != len(want) {
		t.Fatalf("round trip lost events: %d -> %d", len(want), len(got))
	}
	for i := range got {
		if got[i].Name != want[i].Name || got[i].Span != want[i].Span {
			t.Fatalf("event %d changed: %+v -> %+v", i, want[i], got[i])
		}
	}
}
