package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/osc"
)

// TestPointResultJSONRoundTripSuccess runs a real characterisation through the
// batch engine and checks the wire form survives marshal → unmarshal →
// re-marshal byte-identically, with the PSS↔Result.PSS aliasing restored.
func TestPointResultJSONRoundTripSuccess(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2, Sigma: 0.02}
	res := Run([]Point{{Name: "p", System: h, X0: []float64{1, 0.1}, TGuess: h.Period() * 1.05}}, nil)
	r := res[0]
	if !r.OK() {
		t.Fatal(r.Err)
	}

	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back PointResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("marshal → unmarshal → marshal is not byte-identical")
	}
	if back.Index != r.Index || back.Name != r.Name || back.Wall != r.Wall {
		t.Fatal("scalar fields changed")
	}
	if back.Result == nil || back.Result.C != r.Result.C {
		t.Fatal("result payload changed")
	}
	if back.PSS == nil || back.PSS != back.Result.PSS {
		t.Fatal("PSS must alias Result.PSS after decode, as it does on a live success")
	}
	if len(back.Attempts) != len(r.Attempts) {
		t.Fatalf("attempts: %d vs %d", len(back.Attempts), len(r.Attempts))
	}
	for i := range back.Attempts {
		if back.Attempts[i].RungName != r.Attempts[i].RungName ||
			back.Attempts[i].Wall != r.Attempts[i].Wall ||
			!reflect.DeepEqual(back.Attempts[i].Trace, r.Attempts[i].Trace) {
			t.Fatalf("attempt %d changed", i)
		}
	}
}

// TestPointResultJSONErrorKindsSurvive checks that errors.Is classification
// against the pipeline sentinels holds after a JSON round trip, for every
// sentinel the engine can emit.
func TestPointResultJSONErrorKindsSurvive(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		sentinel error
	}{
		{"canceled", fmt.Errorf("point %q: %w", "p", budget.ErrCanceled), budget.ErrCanceled},
		{"budget", fmt.Errorf("attempt: %w", budget.ErrBudgetExceeded), budget.ErrBudgetExceeded},
		{"panic", &PanicError{Value: "boom", Stack: []byte("stack")}, ErrModelPanic},
	}
	sentinels := []error{budget.ErrCanceled, budget.ErrBudgetExceeded, ErrModelPanic}
	for _, tc := range cases {
		r := PointResult{
			Index: 3,
			Name:  tc.name,
			Err:   tc.err,
			Attempts: []Attempt{{
				Rung: 1, RungName: "retry",
				Err:  tc.err,
				Wall: 17 * time.Millisecond,
			}},
			Wall: 40 * time.Millisecond,
		}
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var back PointResult
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back.Err == nil || back.Err.Error() != tc.err.Error() {
			t.Fatalf("%s: message changed: %v", tc.name, back.Err)
		}
		for _, s := range sentinels {
			want := s == tc.sentinel
			if got := errors.Is(back.Err, s); got != want {
				t.Fatalf("%s: errors.Is(decoded, %v) = %v, want %v", tc.name, s, got, want)
			}
			if got := errors.Is(back.Attempts[0].Err, s); got != want {
				t.Fatalf("%s attempt: errors.Is(decoded, %v) = %v, want %v", tc.name, s, got, want)
			}
		}
		if back.OK() {
			t.Fatalf("%s: failed result decoded as OK", tc.name)
		}
	}

	// A plain error stays an error but matches no sentinel.
	data, err := json.Marshal(PointResult{Err: errors.New("shooting: diverged")})
	if err != nil {
		t.Fatal(err)
	}
	var back PointResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Err == nil || back.Err.Error() != "shooting: diverged" {
		t.Fatalf("plain error changed: %v", back.Err)
	}
	for _, s := range sentinels {
		if errors.Is(back.Err, s) {
			t.Fatalf("plain error spuriously matches %v", s)
		}
	}
}

// TestPointResultJSONDegradedKeepsStandalonePSS: a degraded point (failed but
// with a converged PSS and no Result) must keep its standalone PSS distinct
// from any Result aliasing.
func TestPointResultJSONDegradedKeepsStandalonePSS(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2, Sigma: 0.02}
	ok := Run([]Point{{Name: "p", System: h, X0: []float64{1, 0.1}, TGuess: h.Period() * 1.05}}, nil)
	if !ok[0].OK() {
		t.Fatal(ok[0].Err)
	}
	r := PointResult{
		Index: 1,
		Name:  "degraded",
		Err:   errors.New("floquet: stability check failed"),
		PSS:   ok[0].PSS,
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back PointResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Result != nil {
		t.Fatal("degraded point grew a Result")
	}
	if back.PSS == nil || back.PSS.T != r.PSS.T || back.PSS.Residual != r.PSS.Residual {
		t.Fatal("standalone PSS changed")
	}
	if back.Degraded() != r.Degraded() {
		t.Fatal("degraded classification changed")
	}
}
