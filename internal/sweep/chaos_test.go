package sweep

import (
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/osc"
)

// hopfPoint builds one fast registry point for chaos runs.
func hopfPoint(t *testing.T, name string) Point {
	t.Helper()
	bm, err := osc.Build("hopf", map[string]float64{"omega": 5})
	if err != nil {
		t.Fatal(err)
	}
	return Point{Name: name, System: bm.Sys, X0: bm.X0, TGuess: bm.TGuess}
}

// TestChaosAttemptFaultRecoversViaLadder fails the base attempt with an
// injected fault and checks the retry ladder escalates past it: injected
// errors are retryable, so the point recovers on the next rung.
func TestChaosAttemptFaultRecoversViaLadder(t *testing.T) {
	defer faultinject.Enable(faultinject.Plan{
		faultinject.SweepAttempt: {Mode: faultinject.ModeError, Count: 1},
	})()
	res := Run([]Point{hopfPoint(t, "chaos")}, nil)
	r := res[0]
	if !r.OK() {
		t.Fatalf("point did not recover: %v", r.Err)
	}
	if len(r.Attempts) != 2 {
		t.Fatalf("%d attempts, want 2 (injected failure + recovery)", len(r.Attempts))
	}
	if !errors.Is(r.Attempts[0].Err, faultinject.ErrInjected) {
		t.Fatalf("first attempt error %v does not wrap ErrInjected", r.Attempts[0].Err)
	}
	st := faultinject.Stats()
	if st[faultinject.SweepAttempt].Fired != 1 {
		t.Fatalf("fault stats: %+v", st)
	}
}

// TestChaosModelPanicIsolated panics inside the model's Eval via the osc
// fault point and checks the engine converts it into a structured
// ErrModelPanic point failure instead of killing the batch.
func TestChaosModelPanicIsolated(t *testing.T) {
	defer faultinject.Enable(faultinject.Plan{
		faultinject.OscEvalPanic: {Mode: faultinject.ModePanic},
	})()
	res := Run([]Point{hopfPoint(t, "boom")}, nil)
	r := res[0]
	if r.OK() {
		t.Fatal("point succeeded under a panicking model")
	}
	if !errors.Is(r.Err, ErrModelPanic) {
		t.Fatalf("error %v does not wrap ErrModelPanic", r.Err)
	}
	var pe *PanicError
	if !errors.As(r.Err, &pe) {
		t.Fatalf("error %v is not a *PanicError", r.Err)
	}
	if _, ok := pe.Value.(*faultinject.InjectedError); !ok {
		t.Fatalf("panic value %v is not the injected fault", pe.Value)
	}
}

// TestChaosModelNaNFailsAttempt poisons Eval with NaN on every hit and checks
// the point fails structurally (non-finite integration at every rung) without
// wedging the engine.
func TestChaosModelNaNFailsAttempt(t *testing.T) {
	defer faultinject.Enable(faultinject.Plan{
		faultinject.OscEvalNaN: {Mode: faultinject.ModeError},
	})()
	res := Run([]Point{hopfPoint(t, "nan")}, nil)
	r := res[0]
	if r.OK() {
		t.Fatal("point succeeded under NaN poisoning")
	}
	if len(r.Attempts) == 0 {
		t.Fatal("no attempts recorded")
	}
}
