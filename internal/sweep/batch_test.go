package sweep

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/floquet"
	"repro/internal/obs"
	"repro/internal/osc"
	"repro/internal/shooting"
)

// sameResult asserts two characterisations are bit-identical by comparing
// their full JSON encodings (C, per-source decomposition, sensitivities, the
// PSS with its whole recorded orbit, and the Floquet decomposition). Go's
// shortest-round-trip float encoding makes this equivalent to exact float64
// equality field by field.
func sameResult(t *testing.T, label string, a, b *core.Result) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("%s: nil result (a=%v b=%v)", label, a == nil, b == nil)
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		if a.C != b.C {
			t.Fatalf("%s: c differs: %g vs %g", label, a.C, b.C)
		}
		t.Fatalf("%s: results differ beyond c (T %g vs %g)", label, a.T(), b.T())
	}
}

// TestBatchedSweepMatchesScalarBitwise is the headline equivalence property:
// a sweep run through the lockstep SoA batch path returns, for every point
// and every batch width, exactly the result the scalar path returns —
// batching is a scheduling change, never a numerical one.
func TestBatchedSweepMatchesScalarBitwise(t *testing.T) {
	pts := hopfGrid(8)
	scalar := Run(pts, &Config{Workers: 4})
	for i, r := range scalar {
		if !r.OK() {
			t.Fatalf("scalar point %d: %v", i, r.Err)
		}
	}
	for _, lanes := range []int{1, 3, 8} {
		reg := obs.NewRegistry()
		obs.SetGlobal(reg)
		batched := Run(pts, &Config{Workers: 2, BatchLanes: lanes})
		obs.SetGlobal(nil)
		for i, r := range batched {
			if !r.OK() {
				t.Fatalf("K=%d point %d: %v", lanes, i, r.Err)
			}
			if len(r.Attempts) != 1 || r.Attempts[0].RungName != "base" {
				t.Fatalf("K=%d point %d: %d attempts (want one base attempt)", lanes, i, len(r.Attempts))
			}
			if r.Attempts[0].Trace.Shooting.Iters == 0 || r.Attempts[0].Trace.Wall <= 0 {
				t.Fatalf("K=%d point %d: attempt trace empty: %+v", lanes, i, r.Attempts[0].Trace)
			}
			if r.PSS == nil || r.PSS != r.Result.PSS {
				t.Fatalf("K=%d point %d: PointResult.PSS must alias Result.PSS", lanes, i)
			}
			sameResult(t, "batched vs scalar", r.Result, scalar[i].Result)
		}
		s := reg.Snapshot()
		wantBatches := int64(0)
		if lanes > 1 {
			wantBatches = int64((len(pts) + lanes - 1) / lanes)
		}
		if got := s.Counter("pn_sweep_batches_total", "ok"); got != wantBatches {
			t.Fatalf("K=%d: pn_sweep_batches_total{ok} = %d, want %d", lanes, got, wantBatches)
		}
		if got := s.Counter("pn_sweep_batches_total", "fallback"); got != 0 {
			t.Fatalf("K=%d: unexpected scalar fallbacks: %d", lanes, got)
		}
	}
}

// TestBatchedSweepMixedFamiliesViaLaneBatch batches points of two model
// families in one unit: no native SoA body covers the mix, so the evaluator
// falls back to the gather/scatter LaneBatch — which must still be
// bit-identical to the scalar path.
func TestBatchedSweepMixedFamiliesViaLaneBatch(t *testing.T) {
	var pts []Point
	for name, params := range map[string]map[string]float64{
		"h5": {"omega": 5}, "h7": {"omega": 7},
	} {
		bm, err := osc.Build("hopf", params)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, Point{Name: name, System: bm.Sys, X0: bm.X0, TGuess: bm.TGuess})
	}
	for name, params := range map[string]map[string]float64{
		"v1": {"mu": 0.8}, "v2": {"mu": 1.2},
	} {
		bm, err := osc.Build("vanderpol", params)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, Point{Name: name, System: bm.Sys, X0: bm.X0, TGuess: bm.TGuess})
	}
	scalar := Run(pts, &Config{Workers: 1})
	batched := Run(pts, &Config{Workers: 1, BatchLanes: len(pts)})
	for i := range pts {
		if !scalar[i].OK() {
			t.Fatalf("scalar %q: %v", pts[i].Name, scalar[i].Err)
		}
		if !batched[i].OK() {
			t.Fatalf("batched %q: %v", pts[i].Name, batched[i].Err)
		}
		sameResult(t, pts[i].Name, batched[i].Result, scalar[i].Result)
	}
}

// TestBatchLaneFailureContinuesLadder puts an easy and a hard point in one
// batch: the easy lane succeeds on the batched base rung while the hard
// lane's structured failure climbs its own scalar retry ladder, ending in
// exactly the result a fully scalar run produces.
func TestBatchLaneFailureContinuesLadder(t *testing.T) {
	opts := &core.Options{Shooting: &shooting.Options{StepsPerPeriod: 60}}
	pts := []Point{
		{Name: "vdp-easy", System: &osc.VanDerPol{Mu: 0.2, Sigma: 0.01}, X0: []float64{2, 0}, TGuess: 9.0, Opts: opts},
		{Name: "vdp-hard", System: &osc.VanDerPol{Mu: 3, Sigma: 0.01}, X0: []float64{2, 0}, TGuess: 9.0, Opts: opts},
	}
	scalar := Run(pts, &Config{Workers: 1})
	batched := Run(pts, &Config{Workers: 1, BatchLanes: 2})

	easy, hard := batched[0], batched[1]
	if !easy.OK() || len(easy.Attempts) != 1 {
		t.Fatalf("easy lane: ok=%v attempts=%d err=%v", easy.OK(), len(easy.Attempts), easy.Err)
	}
	if !hard.OK() {
		t.Fatalf("hard lane never recovered: %v", hard.Err)
	}
	if len(hard.Attempts) != 3 {
		t.Fatalf("hard lane: %d attempts, want 3 (batched base + two scalar rungs)", len(hard.Attempts))
	}
	if !errors.Is(hard.Attempts[0].Err, floquet.ErrNoUnitMultiplier) {
		t.Fatalf("hard lane batched attempt: %v, want ErrNoUnitMultiplier", hard.Attempts[0].Err)
	}
	if hard.Attempts[2].RungName != "max" || hard.Attempts[2].Err != nil {
		t.Fatalf("hard lane final attempt: %q err=%v", hard.Attempts[2].RungName, hard.Attempts[2].Err)
	}
	sameResult(t, "easy", easy.Result, scalar[0].Result)
	sameResult(t, "hard", hard.Result, scalar[1].Result)
}

// TestPSSReuseSkipsShooting is the retry-ladder fast-path regression test:
// when a rung fails downstream of shooting and the next rung changes only
// downstream knobs, the converged periodic steady state is reused instead of
// re-run — pn_shooting_finds_total must count one Find per point, not one
// per attempt.
func TestPSSReuseSkipsShooting(t *testing.T) {
	// Steps=30 leaves an adjoint closure error ≈7e-6 on this Hopf point —
	// far above the 1e-7 drift bound — while the second rung's 10× steps
	// land near 1e-9, far below it. Shooting knobs never change.
	ladder := []Rung{{Name: "base"}, {Name: "adj", AdjointFactor: 10}}
	popts := &core.Options{Floquet: &floquet.Options{Steps: 30, MaxPeriodDrift: 1e-7}}
	mk := func(omega float64) Point {
		h := &osc.Hopf{Lambda: 1, Omega: omega, Sigma: 0.02}
		return Point{Name: "h", System: h, X0: []float64{1, 0.1}, TGuess: h.Period() * 1.05, Opts: popts}
	}

	check := func(t *testing.T, cfg *Config, pts []Point) {
		reg := obs.NewRegistry()
		obs.SetGlobal(reg)
		defer obs.SetGlobal(nil)
		results := Run(pts, cfg)
		for i, r := range results {
			if !r.OK() {
				t.Fatalf("point %d failed: %v", i, r.Err)
			}
			if len(r.Attempts) != 2 {
				t.Fatalf("point %d: %d attempts, want 2", i, len(r.Attempts))
			}
			if !errors.Is(r.Attempts[0].Err, floquet.ErrAdjointClosure) {
				t.Fatalf("point %d base attempt: %v, want ErrAdjointClosure", i, r.Attempts[0].Err)
			}
			// The reused attempt still produced a full result with the same PSS.
			if r.Result.PSS == nil || r.PSS.T != r.Result.PSS.T {
				t.Fatalf("point %d: reused attempt lost the PSS", i)
			}
		}
		s := reg.Snapshot()
		if got, want := s.Counter("pn_shooting_finds_total", ""), int64(len(pts)); got != want {
			t.Fatalf("pn_shooting_finds_total = %d, want %d (shooting must run once per point, not per attempt)", got, want)
		}
		if got, want := s.Counter("pn_sweep_pss_reuse_total", ""), int64(len(pts)); got != want {
			t.Fatalf("pn_sweep_pss_reuse_total = %d, want %d", got, want)
		}
	}

	t.Run("scalar", func(t *testing.T) {
		check(t, &Config{Workers: 1, Ladder: ladder}, []Point{mk(5)})
	})
	t.Run("batched", func(t *testing.T) {
		// Both lanes fail closure on the batched base rung; each continues
		// its own ladder reusing the PSS found inside the batch.
		check(t, &Config{Workers: 1, Ladder: ladder, BatchLanes: 2}, []Point{mk(5), mk(6)})
	})
}

// TestBatchedSweepSharesScalarCacheKeys proves the batched path is invisible
// to the content-addressed cache: results computed batched are stored under
// the same pnfp1 keys the scalar path derives, and vice versa.
func TestBatchedSweepSharesScalarCacheKeys(t *testing.T) {
	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pts := []Point{keyedHopfPoint("a", 2), keyedHopfPoint("b", 3), keyedHopfPoint("c", 4), keyedHopfPoint("d", 5)}

	first := Run(pts, &Config{Workers: 1, BatchLanes: 4, Cache: store})
	for i, r := range first {
		if !r.OK() || r.Cached {
			t.Fatalf("batched first run point %d: ok=%v cached=%v err=%v", i, r.OK(), r.Cached, r.Err)
		}
	}

	// A scalar run over the same grid must be served entirely from the
	// batched run's cache entries.
	second := Run(pts, &Config{Workers: 1, Cache: store})
	for i, r := range second {
		if !r.OK() || !r.Cached {
			t.Fatalf("scalar rerun point %d: ok=%v cached=%v err=%v", i, r.OK(), r.Cached, r.Err)
		}
		sameResult(t, "cached vs computed", r.Result, first[i].Result)
	}

	// And a batched rerun short-circuits on the pre-check without building a
	// batch at all.
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)
	third := Run(pts, &Config{Workers: 1, BatchLanes: 4, Cache: store})
	for i, r := range third {
		if !r.OK() || !r.Cached {
			t.Fatalf("batched rerun point %d: ok=%v cached=%v err=%v", i, r.OK(), r.Cached, r.Err)
		}
	}
	s := reg.Snapshot()
	if got := s.Counter("pn_sweep_batches_total", "ok"); got != 0 {
		t.Fatalf("batched rerun ran %d batches, want 0 (cache pre-check)", got)
	}
	if got := s.Counter("pn_sweep_points_total", "cached"); got != 4 {
		t.Fatalf("cached outcomes = %d, want 4", got)
	}
}

// TestChaosSweepBatchFaultFallsBackScalar injects a failure at the batch
// fault point and checks every lane is re-run on the isolated scalar path,
// successfully and with fallback accounting.
func TestChaosSweepBatchFaultFallsBackScalar(t *testing.T) {
	defer faultinject.Enable(faultinject.Plan{
		faultinject.SweepBatch: {Mode: faultinject.ModeError, Count: 1},
	})()
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	pts := hopfGrid(3)
	results := Run(pts, &Config{Workers: 1, BatchLanes: 3})
	for i, r := range results {
		if !r.OK() {
			t.Fatalf("point %d did not recover scalar: %v", i, r.Err)
		}
	}
	s := reg.Snapshot()
	if got := s.Counter("pn_sweep_batches_total", "fallback"); got != 1 {
		t.Fatalf("fallback batches = %d, want 1", got)
	}
	if st := faultinject.Stats(); st[faultinject.SweepBatch].Fired != 1 {
		t.Fatalf("fault stats: %+v", st)
	}
}

// TestChaosBatchKernelFaultFallsBackScalar fails the first batched SoA
// kernel invocation: the whole batch dies as an infrastructure error and the
// sweep engine re-runs every lane scalar.
func TestChaosBatchKernelFaultFallsBackScalar(t *testing.T) {
	defer faultinject.Enable(faultinject.Plan{
		faultinject.OdeBatchKernel: {Mode: faultinject.ModeError, Count: 1},
	})()
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	pts := hopfGrid(3)
	results := Run(pts, &Config{Workers: 1, BatchLanes: 3})
	for i, r := range results {
		if !r.OK() {
			t.Fatalf("point %d did not recover scalar: %v", i, r.Err)
		}
		if len(r.Attempts) != 1 || r.Attempts[0].RungName != "base" {
			t.Fatalf("point %d: scalar fallback should succeed on base, got %d attempts", i, len(r.Attempts))
		}
	}
	s := reg.Snapshot()
	if got := s.Counter("pn_sweep_batches_total", "fallback"); got != 1 {
		t.Fatalf("fallback batches = %d, want 1", got)
	}
	if st := faultinject.Stats(); st[faultinject.OdeBatchKernel].Fired != 1 {
		t.Fatalf("fault stats: %+v", st)
	}
}

// TestChaosModelPanicInBatchIsolated panics the model inside the lockstep
// kernels: the batch goroutine's recovery routes every lane to the scalar
// path, where the panicking model becomes a per-point structured
// ErrModelPanic instead of killing the sweep.
func TestChaosModelPanicInBatchIsolated(t *testing.T) {
	defer faultinject.Enable(faultinject.Plan{
		faultinject.OscEvalPanic: {Mode: faultinject.ModePanic},
	})()
	pts := []Point{hopfPoint(t, "boom-a"), hopfPoint(t, "boom-b")}
	results := Run(pts, &Config{Workers: 1, BatchLanes: 2})
	for i, r := range results {
		if r.OK() {
			t.Fatalf("point %d succeeded under a panicking model", i)
		}
		if !errors.Is(r.Err, ErrModelPanic) {
			t.Fatalf("point %d error %v does not wrap ErrModelPanic", i, r.Err)
		}
	}
}
