// Package sweep runs batches of phase-noise characterisations — parameter
// sweeps over bias, supply, or device values — through the full
// shooting → Floquet → c-quadrature pipeline on a bounded worker pool.
//
// The engine mirrors the sde.Ensemble pattern: a fixed number of workers
// drain an index channel and write into a result slice, so the output order
// is deterministic whatever the scheduling. Robustness comes in four layers:
//
//   - a retry ladder: when a point fails with a refinable error (Newton
//     shooting did not converge, integrator step-size underflow or
//     divergence, no unit Floquet multiplier, adjoint closure too large),
//     the engine escalates through rungs of tighter tolerance, more
//     integration steps, and longer transient before recording a structured
//     per-point failure;
//   - deadlines: Config.AttemptTimeout and Config.PointTimeout bound each
//     attempt and each point's whole ladder by wall clock, and Config.Budget
//     cancels or deadline-bounds the whole batch. Cut-off points fail with
//     typed budget.ErrBudgetExceeded / budget.ErrCanceled while every other
//     point completes;
//   - panic isolation: each attempt runs in its own goroutine with panic
//     recovery, so a panicking model Eval/Jacobian becomes a structured
//     ErrModelPanic failure (carrying the recovered value and stack) for
//     that point instead of killing the process or deadlocking the feeder;
//   - partial results: when shooting converged but Floquet failed or the
//     budget expired, the PointResult keeps the best converged PSS, so a
//     batch reports everything it learned.
//
// One hard, hostile, or hanging point never aborts the batch.
//
// With Config.Cache attached, keyed points resolve through the
// content-addressed result store first: repeated batches become cache sweeps,
// and concurrent identical points collapse to a single pipeline run.
package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dynsys"
	"repro/internal/faultinject"
	"repro/internal/floquet"
	"repro/internal/obs"
	"repro/internal/ode"
	"repro/internal/shooting"
)

// Point is one characterisation job in a batch.
type Point struct {
	Name   string        // label carried into results and progress hooks
	System dynsys.System // oscillator model
	X0     []float64     // initial state guess
	TGuess float64       // period guess
	Opts   *core.Options // base pipeline options (nil for defaults); rungs scale from these
	// Key, when non-empty and Config.Cache is set, content-addresses this
	// point's result: a hit skips the whole retry ladder, a successful run
	// is stored for future batches. Build keys with
	// cache.CharacterisationKey so every producer (CLI, job server, library
	// callers) shares one store. The key must capture everything that
	// determines the result — model identity, parameters, X0, TGuess and
	// the effective options — or cached answers will be wrong.
	Key string
}

// Rung is one escalation step of the retry ladder. Zero-valued fields leave
// the corresponding option untouched; scaling factors apply to the point's
// base options (or the solver defaults when the base leaves them unset).
type Rung struct {
	Name           string  // label recorded in Attempt
	TolDiv         float64 // divide the shooting tolerance by this (>1 tightens)
	StepsFactor    float64 // multiply shooting StepsPerPeriod (>1 refines)
	AdjointFactor  float64 // multiply explicit floquet Steps (>1 refines; default Steps auto-scale with StepsPerPeriod)
	TransientExtra float64 // additional transient periods before shooting
}

// Defaults the rungs scale against when the point's base options leave a
// field unset. They mirror shooting.Options.defaults.
const (
	defaultTol            = 1e-10
	defaultStepsPerPeriod = 2000
	defaultTransient      = 20
)

// defaultAbandonGrace is how long the engine waits, after cancelling an
// attempt's token, for a model that ignores cancellation before abandoning
// the attempt goroutine (see Config.AbandonGrace).
const defaultAbandonGrace = time.Second

// DefaultLadder escalates twice after the base attempt: a 10× tighter /
// 2× finer pass, then a 100× tighter / 4× finer pass with a much longer
// transient for points that start far off the attractor.
func DefaultLadder() []Rung {
	return []Rung{
		{Name: "base"},
		{Name: "tight", TolDiv: 10, StepsFactor: 2, AdjointFactor: 2, TransientExtra: 20},
		{Name: "max", TolDiv: 100, StepsFactor: 4, AdjointFactor: 4, TransientExtra: 60},
	}
}

// ErrModelPanic tags a per-point failure caused by a panicking model
// Eval/Jacobian/Noise. Branch with errors.Is(err, ErrModelPanic); recover
// details with errors.As into a *PanicError.
var ErrModelPanic = errors.New("sweep: model panicked")

// PanicError is the structured failure recorded when a model panics during
// an attempt. It satisfies errors.Is(err, ErrModelPanic).
type PanicError struct {
	Point string // Point.Name
	Rung  string // ladder rung during which the panic fired
	Value any    // the recovered panic value
	Stack []byte // goroutine stack at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: model panicked on point %q (rung %q): %v", e.Point, e.Rung, e.Value)
}

// Is reports target == ErrModelPanic so the sentinel matches through wraps.
func (e *PanicError) Is(target error) bool { return target == ErrModelPanic }

// Attempt records one ladder rung tried on one point.
type Attempt struct {
	Rung     int           // index into the ladder
	RungName string        // Rung.Name
	Err      error         // nil on success
	Trace    core.Trace    // per-stage diagnostics of this attempt
	Wall     time.Duration // wall-clock time of this attempt
	// Flight is the flight-recorder dump: the last Config.FlightRecorder
	// span events of this attempt's subtree, captured when the attempt
	// panicked, was cut off by a budget/timeout, or was abandoned. Empty for
	// successes and ordinary retryable failures.
	Flight []obs.Event
}

// PointResult is the outcome of one point: either a characterisation or a
// structured failure, plus the full retry history.
type PointResult struct {
	Index  int    // position in the input slice
	Name   string // Point.Name
	Result *core.Result
	Err    error // nil iff Result != nil; the last attempt's error otherwise
	// PSS is the best converged periodic steady state seen across all
	// attempts (smallest closure residual). On success it equals
	// Result.PSS; on a degraded failure — shooting converged but Floquet
	// failed, or the budget expired mid-pipeline — it preserves what the
	// point did learn.
	PSS      *shooting.PSS
	Attempts []Attempt
	Wall     time.Duration // total wall-clock time across all attempts
	// Cached reports that the result was served from the content-addressed
	// store (or by joining an identical in-flight computation) without
	// running the pipeline; Attempts is empty in that case.
	Cached bool
}

// OK reports whether the point characterised successfully.
func (r *PointResult) OK() bool { return r.Err == nil && r.Result != nil }

// Degraded reports whether the point failed overall but still carries a
// converged periodic steady state (partial result).
func (r *PointResult) Degraded() bool { return r.Err != nil && r.PSS != nil }

// Config tunes a batch run.
type Config struct {
	// Workers bounds the worker pool (default GOMAXPROCS, capped at the
	// number of points).
	Workers int
	// Ladder is the escalation sequence (default DefaultLadder()). The
	// first rung is the base attempt; an empty slice gets one plain rung.
	Ladder []Rung
	// Budget, when non-nil, bounds the whole batch: on cancellation or
	// deadline expiry, in-flight attempts are cut off (typed error per
	// point), pending points are marked without running, and Run returns
	// with every completed result intact.
	Budget *budget.Token
	// PointTimeout bounds one point's whole retry ladder by wall clock
	// (0 = unbounded). On expiry the point fails with a wrapped
	// budget.ErrBudgetExceeded.
	PointTimeout time.Duration
	// AttemptTimeout bounds each individual attempt by wall clock
	// (0 = unbounded). Budget cut-offs are not retryable, so an attempt
	// timeout also ends the point's ladder.
	AttemptTimeout time.Duration
	// AbandonGrace is how long to wait, after a deadline or cancellation
	// has tripped the attempt's token, for the model to return before the
	// attempt goroutine is abandoned (default 1s). Cooperative models exit
	// within a few integrator steps; only a model that ignores cancellation
	// entirely (e.g. blocks forever inside Eval) is abandoned, and its
	// late result is discarded.
	AbandonGrace time.Duration
	// OnAttempt, when non-nil, streams progress: it is called after every
	// attempt (success or failure) on any point. Calls are serialised by
	// the engine, so the hook needs no locking of its own.
	OnAttempt func(index int, name string, att Attempt)
	// OnPoint, when non-nil, is called once per point as it completes,
	// serialised like OnAttempt.
	//
	// Ordering guarantee: exactly one call per point, and res.Index is exact
	// (the position in the input slice), but calls arrive in completion
	// order, not input order — and with a Cache attached the interleaving
	// gets extreme, because cached points complete near-instantly while
	// computed ones take seconds. Consumers must key on res.Index, never on
	// arrival order. Points skipped because the batch budget tripped are
	// reported here too.
	OnPoint func(res PointResult)
	// Cache, when non-nil, is the content-addressed result store consulted
	// for every point with a non-empty Key before its retry ladder runs. A
	// hit returns the stored result (PointResult.Cached = true) without
	// invoking the pipeline; concurrent identical points — within this
	// batch, across batches, or across processes sharing a disk store —
	// collapse to one computation via singleflight. Only successful
	// characterisations are stored; a point that joins an in-flight
	// identical computation shares its outcome, including a failure (a
	// budget trip in the computing caller fails its waiters too).
	Cache *cache.Store
	// BatchLanes, when > 1, groups compatible points — same state dimension
	// and identical effective base-rung solver options — into lockstep SoA
	// batches of up to this many lanes. A batched group runs its base-rung
	// attempt through core.CharacteriseBatch at full width; every lane's
	// result is bit-identical to the scalar pipeline (and hashes to the same
	// cache key), so batching is purely a throughput lever. Per-point budget
	// cut-offs, structured failures and attempt traces are preserved: a lane
	// that fails retryably continues its own scalar retry ladder from the
	// next rung, and a batch-level infrastructure failure (injected fault,
	// model panic inside the lockstep kernels) falls every lane back to the
	// fully isolated scalar path from the base rung. Cached points are
	// served by a cache pre-check before the batch is built; fresh successes
	// are committed back to the store.
	BatchLanes int
	// Span, when non-nil, parents the batch's root span so the whole sweep
	// subtree lands in the caller's trace (e.g. a serve job's span). When nil
	// the root span starts on the process-wide emitter as before.
	Span *obs.Span
	// FlightRecorder, when > 0, runs every attempt under a ring buffer of
	// this many span events. If the attempt panics, trips its budget/timeout,
	// or is abandoned, the ring is dumped into Attempt.Flight so the failure
	// carries its own bounded timeline — even when process-wide tracing is
	// off. 0 disables the recorder.
	FlightRecorder int
	// DiscardResults makes Run release each point's result right after its
	// OnPoint delivery and return nil instead of the accumulated slice — the
	// memory-bounding mode for huge sweeps whose results stream somewhere
	// else (a spill file, a network sink) as they complete. OnPoint is the
	// only way to observe results in this mode.
	DiscardResults bool
}

// Retryable reports whether err is a refinable pipeline failure — one the
// retry ladder may cure with tighter tolerances, more steps, or a longer
// transient. Structural errors (bad dimensions, unstable cycles, degenerate
// monodromy), budget cut-offs, and model panics are not retryable: repeating
// a cut-off under the same budget cannot help, and a panicking model stays
// broken at any tolerance.
func Retryable(err error) bool {
	if err == nil || budget.Is(err) || errors.Is(err, ErrModelPanic) {
		return false
	}
	return errors.Is(err, shooting.ErrNoConvergence) ||
		errors.Is(err, shooting.ErrIntegration) ||
		errors.Is(err, ode.ErrStepSizeUnderflow) ||
		errors.Is(err, ode.ErrNewtonDiverged) ||
		errors.Is(err, floquet.ErrNoUnitMultiplier) ||
		errors.Is(err, floquet.ErrAdjointClosure) ||
		// Injected chaos failures retry so fault plans can drive the ladder
		// (e.g. Count:1 fails the base attempt and recovers on the next rung).
		errors.Is(err, faultinject.ErrInjected)
}

// applyRung builds the options for one attempt: a deep-enough copy of the
// point's base options (caller structs are never mutated) with the rung's
// scalings applied against the base values or the solver defaults.
func applyRung(base *core.Options, r Rung) *core.Options {
	out := core.Options{}
	if base != nil {
		out = *base
	}
	sc := shooting.Options{}
	if out.Shooting != nil {
		sc = *out.Shooting
	}
	fc := floquet.Options{}
	if out.Floquet != nil {
		fc = *out.Floquet
	}
	if r.TolDiv > 1 {
		if sc.Tol <= 0 {
			sc.Tol = defaultTol
		}
		sc.Tol /= r.TolDiv
	}
	if r.StepsFactor > 1 {
		if sc.StepsPerPeriod <= 0 {
			sc.StepsPerPeriod = defaultStepsPerPeriod
		}
		sc.StepsPerPeriod = int(float64(sc.StepsPerPeriod) * r.StepsFactor)
	}
	if r.TransientExtra > 0 {
		if sc.Transient <= 0 {
			sc.Transient = defaultTransient
		}
		sc.Transient += r.TransientExtra
	}
	// Explicit adjoint step counts scale directly; the default (0) already
	// auto-scales with the orbit resolution raised by StepsFactor.
	if r.AdjointFactor > 1 && fc.Steps > 0 {
		fc.Steps = int(float64(fc.Steps) * r.AdjointFactor)
	}
	out.Shooting = &sc
	out.Floquet = &fc
	return &out
}

// Run characterises every point and returns one PointResult per point, in
// input order. Failures are per-point and structured; Run itself never
// fails. Points must not share mutable state (a dynsys.System may be shared
// only if its methods are safe for concurrent use).
//
// When cfg.Budget trips mid-batch, Run returns promptly: completed results
// are kept, in-flight points fail with a typed budget error, and points that
// never started are marked with a wrapped budget.ErrCanceled /
// ErrBudgetExceeded.
func Run(points []Point, cfg *Config) []PointResult {
	var c Config
	if cfg != nil {
		c = *cfg
	}
	if len(c.Ladder) == 0 {
		c.Ladder = DefaultLadder()
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	if workers < 1 {
		workers = 1
	}

	out := make([]PointResult, len(points))
	var hookMu sync.Mutex // serialises user hooks across workers
	attempt := func(i int, name string, att Attempt) {
		if c.OnAttempt == nil {
			return
		}
		hookMu.Lock()
		defer hookMu.Unlock()
		c.OnAttempt(i, name, att)
	}
	done := func(res PointResult) {
		if c.OnPoint == nil {
			return
		}
		hookMu.Lock()
		defer hookMu.Unlock()
		c.OnPoint(res)
	}

	m := sweepMetrics.Get()
	// Add, not Set: concurrent batches (several server jobs, overlapping CLI
	// runs) share this gauge, and each decrements once per finished point —
	// including points short-circuited by the cache or skipped on a budget
	// trip — so the gauge returns to its pre-batch value when Run returns.
	m.queueDepth.Add(float64(len(points)))
	rsp := obs.StartSpan(c.Span, "sweep.Run")
	rsp.SetAttr("points", len(points))
	rsp.SetAttr("workers", workers)

	// finalize does the per-point bookkeeping once out[k] is in its final
	// state, whatever path produced it.
	finalize := func(k int) {
		switch {
		case out[k].Cached && out[k].OK():
			m.pointsCached.Inc()
		case out[k].OK():
			m.pointsOK.Inc()
		case out[k].Degraded():
			m.pointsDegraded.Inc()
		default:
			m.pointsFailed.Inc()
		}
		m.pointSeconds.Observe(out[k].Wall.Seconds())
		m.queueDepth.Add(-1)
		done(out[k])
		if c.DiscardResults {
			// The hook has seen the result; drop the engine's reference so a
			// huge sweep retains O(workers), not O(points), result payloads.
			out[k] = PointResult{}
		}
	}

	// A unit is what one worker picks up in one go: a single point's retry
	// ladder, or a lockstep batch of compatible points.
	units := planUnits(points, &c)
	rsp.SetAttr("units", len(units))

	var wg sync.WaitGroup
	next := make(chan []int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idxs := range next {
				if len(idxs) == 1 {
					k := idxs[0]
					out[k] = runPoint(k, points[k], &c, attempt, rsp)
					finalize(k)
					continue
				}
				runBatchUnit(idxs, points, &c, out, attempt, finalize, rsp)
			}
		}()
	}
	// The feeder watches the batch budget so a cancellation with idle-free
	// workers cannot strand it: pending points are marked without running.
	cancelCh := c.Budget.Done() // nil when the budget is not cancelable
feed:
	for u := range units {
		if err := c.Budget.Err(); err != nil { // deadline-only budgets have no Done channel
			markSkipped(points, out, units[u:], err, done)
			break feed
		}
		select {
		case next <- units[u]:
		case <-cancelCh:
			markSkipped(points, out, units[u:], c.Budget.Err(), done)
			break feed
		}
	}
	close(next)
	wg.Wait()
	rsp.End()
	if c.DiscardResults {
		return nil
	}
	return out
}

// markSkipped records budget-typed failures for every point of the units
// that never reached a worker.
func markSkipped(points []Point, out []PointResult, units [][]int, cause error, done func(PointResult)) {
	if cause == nil {
		cause = budget.ErrCanceled
	}
	m := sweepMetrics.Get()
	for _, u := range units {
		for _, j := range u {
			out[j] = PointResult{
				Index: j,
				Name:  points[j].Name,
				Err:   fmt.Errorf("sweep: point %q not started: %w", points[j].Name, cause),
			}
			m.pointsSkipped.Inc()
			m.queueDepth.Add(-1)
			done(out[j])
		}
	}
}

// runPoint resolves one point: through the content-addressed cache when the
// point is keyed (hit, or singleflight-joined computation), otherwise by
// walking the retry ladder directly.
func runPoint(index int, p Point, c *Config, attempt func(int, string, Attempt), rsp *obs.Span) PointResult {
	start := time.Now()
	res := PointResult{Index: index, Name: p.Name}
	if err := c.Budget.Err(); err != nil {
		res.Err = fmt.Errorf("sweep: point %q not started: %w", p.Name, err)
		return res
	}
	psp := obs.StartSpan(rsp, "sweep.point")
	psp.SetAttr("index", index)
	psp.SetAttr("name", p.Name)
	defer func() {
		psp.SetAttr("attempts", len(res.Attempts))
		psp.SetAttr("cached", res.Cached)
		psp.EndErr(res.Err)
	}()

	if c.Cache != nil && p.Key != "" {
		res = runPointCached(index, p, c, attempt, psp)
	} else {
		res = runLadder(index, p, c, attempt, psp)
	}
	res.Wall = time.Since(start)
	return res
}

// runPointCached funnels the point through Config.Cache: one caller per key
// runs the ladder and stores a successful result; everyone else is served
// from the store or by joining that computation.
func runPointCached(index int, p Point, c *Config, attempt func(int, string, Attempt), psp *obs.Span) PointResult {
	var computed *PointResult
	payload, origin, err := c.Cache.Do(p.Key, func() ([]byte, error) {
		r := runLadder(index, p, c, attempt, psp)
		computed = &r
		if !r.OK() {
			return nil, r.Err
		}
		return json.Marshal(r.Result)
	})
	if computed != nil {
		// This caller ran the pipeline; its PointResult has the full attempt
		// history (and possibly a degraded partial PSS).
		return *computed
	}
	res := PointResult{Index: index, Name: p.Name, Cached: true}
	if err != nil {
		// Joined an identical in-flight computation that failed.
		res.Err = fmt.Errorf("sweep: point %q shared a failed identical computation: %w", p.Name, err)
		return res
	}
	var cr core.Result
	if jerr := json.Unmarshal(payload, &cr); jerr != nil {
		// A stale or foreign payload under our key: fall back to computing
		// rather than failing the point on a cache artefact.
		return runLadder(index, p, c, attempt, psp)
	}
	_ = origin // mem/disk/shared all count as cached for the result record
	res.Result = &cr
	res.PSS = cr.PSS
	return res
}

// runLadder walks one point up the ladder until an attempt succeeds or the
// failure is not retryable, under the point's wall-clock budget.
func runLadder(index int, p Point, c *Config, attempt func(int, string, Attempt), psp *obs.Span) PointResult {
	return continueLadder(index, p, c, attempt, psp, PointResult{Index: index, Name: p.Name}, 0, nil, nil)
}

// reusablePSS decides whether the previous attempt's converged solution can
// replace the next rung's shooting stage: the shooting knobs must be
// unchanged (the solve would reproduce the same PSS at full cost) and the
// recorded residual must already meet the next rung's tolerance. This is the
// retry-ladder fast path for failures downstream of shooting — an adjoint
// that didn't close, a budget that expired mid-Floquet — retried with only
// downstream resolution raised.
func reusablePSS(prev, next *core.Options, pss *shooting.PSS) bool {
	if prev == nil || next == nil || pss == nil {
		return false
	}
	pe, ne := prev.Shooting.Effective(), next.Shooting.Effective()
	if pe.Tol != ne.Tol || pe.MaxIter != ne.MaxIter || pe.StepsPerPeriod != ne.StepsPerPeriod ||
		pe.Transient != ne.Transient || pe.NoDamping != ne.NoDamping {
		return false
	}
	return pss.Residual < ne.Tol
}

// continueLadder walks the ladder from rung `from`, seeded with the state a
// prior attempt accumulated (the batched base rung, when the point came out
// of a lockstep group). prevOpts/prevPSS describe the most recent failed
// attempt, for the shooting-reuse decision; prevPSS is non-nil exactly when
// that attempt converged its shooting stage and failed downstream.
func continueLadder(index int, p Point, c *Config, attempt func(int, string, Attempt), psp *obs.Span, res PointResult, from int, prevOpts *core.Options, prevPSS *shooting.PSS) PointResult {
	start := time.Now()
	m := sweepMetrics.Get()
	ptTok := c.Budget
	if c.PointTimeout > 0 {
		ptTok = budget.WithTimeout(ptTok, c.PointTimeout)
	}
	for ri := from; ri < len(c.Ladder); ri++ {
		rung := c.Ladder[ri]
		opts := applyRung(p.Opts, rung)
		if reusablePSS(prevOpts, opts, prevPSS) {
			opts.ReusePSS = prevPSS
			m.pssReuses.Inc()
		}
		att, r, pss := runAttempt(p, ri, rung, opts, ptTok, c, psp)
		res.Attempts = append(res.Attempts, att)
		attempt(index, p.Name, att)
		if pss != nil && (res.PSS == nil || pss.Residual < res.PSS.Residual) {
			res.PSS = pss
		}
		if att.Err == nil {
			res.Result, res.Err = r, nil
			if r.PSS != nil {
				res.PSS = r.PSS
			}
			break
		}
		res.Err = att.Err
		if !Retryable(att.Err) {
			break
		}
		prevOpts, prevPSS = opts, pss
	}
	res.Wall += time.Since(start)
	return res
}

// attemptOutcome is what one attempt goroutine hands back to its supervisor.
type attemptOutcome struct {
	att Attempt
	res *core.Result
	pss *shooting.PSS
}

// runAttempt executes one ladder rung in its own goroutine under the
// combined attempt/point/batch budget, recovering panics and enforcing the
// deadline even against a model that never returns. opts is the rung's
// prepared option set (applyRung output, plus any ReusePSS fast path); its
// Trace/Budget/Partial/Span fields are overwritten here.
func runAttempt(p Point, ri int, rung Rung, opts *core.Options, parent *budget.Token, c *Config, psp *obs.Span) (Attempt, *core.Result, *shooting.PSS) {
	m := sweepMetrics.Get()
	m.attempts.With(rung.Name).Inc()
	// With the flight recorder on, the attempt's whole span subtree (this
	// span plus the pipeline-stage spans under it via opts.Span) is teed into
	// a private ring so a crashing attempt can dump its final moments — even
	// when process-wide tracing is off and psp is nil.
	var ring *obs.RingEmitter
	var asp *obs.Span
	if c.FlightRecorder > 0 {
		ring = obs.NewRingEmitter(c.FlightRecorder)
		asp = obs.StartSpanOn(obs.Tee(psp.Emitter(), ring), psp, "sweep.attempt")
	} else {
		asp = obs.StartSpan(psp, "sweep.attempt")
	}
	asp.SetAttr("rung", rung.Name)
	// dump attaches the ring to crash-class failures — panic, budget/timeout
	// cut-off, abandonment — never to ordinary retryable failures, which
	// would bloat journals. Call after asp has ended so the dump includes the
	// attempt span itself.
	dump := func(att *Attempt) {
		if ring == nil || att.Err == nil {
			return
		}
		if errors.Is(att.Err, ErrModelPanic) || budget.Is(att.Err) {
			att.Flight = ring.Events()
			m.flightDumps.Inc()
		}
	}

	atTok, cancel := budget.WithCancel(parent)
	defer cancel()
	if c.AttemptTimeout > 0 {
		atTok = budget.WithTimeout(atTok, c.AttemptTimeout)
	}

	aStart := time.Now()
	ch := make(chan attemptOutcome, 1) // buffered: an abandoned goroutine can still exit
	go func() {
		out := attemptOutcome{att: Attempt{Rung: ri, RungName: rung.Name}}
		var partial core.Partial
		defer func() {
			if rec := recover(); rec != nil {
				out.att.Err = &PanicError{Point: p.Name, Rung: rung.Name, Value: rec, Stack: debug.Stack()}
				out.res = nil
				out.pss = partial.PSS
			}
			out.att.Wall = time.Since(aStart)
			ch <- out
		}()
		// The attempt-level fault point fires inside the isolated goroutine so
		// ModePanic exercises the same recovery path a hostile model does.
		if err := faultinject.Fire(faultinject.SweepAttempt); err != nil {
			out.att.Err = fmt.Errorf("sweep: attempt %q on point %q: %w", rung.Name, p.Name, err)
			return
		}
		opts.Trace = &out.att.Trace
		opts.Budget = atTok
		opts.Partial = &partial
		opts.Span = asp
		out.res, out.att.Err = core.Characterise(p.System, p.X0, p.TGuess, opts)
		out.pss = partial.PSS
	}()

	// Supervise: wait for the attempt, the earliest deadline in the chain,
	// or a batch cancellation.
	var timer <-chan time.Time
	if dl, ok := atTok.Deadline(); ok {
		tm := time.NewTimer(time.Until(dl))
		defer tm.Stop()
		timer = tm.C
	}
	select {
	case o := <-ch:
		asp.EndErr(o.att.Err)
		dump(&o.att)
		return o.att, o.res, o.pss
	case <-timer:
	case <-atTok.Done():
	}

	// Budget tripped. A cooperative model sees the cancelled token within a
	// few integrator steps and returns with a typed error and a full trace;
	// give it AbandonGrace before declaring it unresponsive.
	cancel()
	grace := c.AbandonGrace
	if grace <= 0 {
		grace = defaultAbandonGrace
	}
	gt := time.NewTimer(grace)
	defer gt.Stop()
	select {
	case o := <-ch:
		asp.EndErr(o.att.Err)
		dump(&o.att)
		return o.att, o.res, o.pss
	case <-gt.C:
		cause := atTok.Err()
		if cause == nil {
			cause = budget.ErrCanceled
		}
		wall := time.Since(aStart)
		m.abandoned.Inc()
		err := fmt.Errorf("sweep: attempt %q on point %q abandoned after %v (model unresponsive to cancellation): %w",
			rung.Name, p.Name, wall.Round(time.Millisecond), cause)
		asp.EndErr(err)
		att := Attempt{
			Rung:     ri,
			RungName: rung.Name,
			Wall:     wall,
			Err:      err,
		}
		dump(&att)
		return att, nil, nil
	}
}
