// Package sweep runs batches of phase-noise characterisations — parameter
// sweeps over bias, supply, or device values — through the full
// shooting → Floquet → c-quadrature pipeline on a bounded worker pool.
//
// The engine mirrors the sde.Ensemble pattern: a fixed number of workers
// drain an index channel and write into a result slice, so the output order
// is deterministic whatever the scheduling. Robustness comes from a retry
// ladder: when a point fails with a refinable error (Newton shooting did not
// converge, no unit Floquet multiplier, adjoint closure too large), the
// engine escalates through rungs of tighter tolerance, more integration
// steps, and longer transient before recording a structured per-point
// failure. One hard point never aborts the batch.
package sweep

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dynsys"
	"repro/internal/floquet"
	"repro/internal/shooting"
)

// Point is one characterisation job in a batch.
type Point struct {
	Name   string        // label carried into results and progress hooks
	System dynsys.System // oscillator model
	X0     []float64     // initial state guess
	TGuess float64       // period guess
	Opts   *core.Options // base pipeline options (nil for defaults); rungs scale from these
}

// Rung is one escalation step of the retry ladder. Zero-valued fields leave
// the corresponding option untouched; scaling factors apply to the point's
// base options (or the solver defaults when the base leaves them unset).
type Rung struct {
	Name           string  // label recorded in Attempt
	TolDiv         float64 // divide the shooting tolerance by this (>1 tightens)
	StepsFactor    float64 // multiply shooting StepsPerPeriod (>1 refines)
	AdjointFactor  float64 // multiply explicit floquet Steps (>1 refines; default Steps auto-scale with StepsPerPeriod)
	TransientExtra float64 // additional transient periods before shooting
}

// Defaults the rungs scale against when the point's base options leave a
// field unset. They mirror shooting.Options.defaults.
const (
	defaultTol            = 1e-10
	defaultStepsPerPeriod = 2000
	defaultTransient      = 20
)

// DefaultLadder escalates twice after the base attempt: a 10× tighter /
// 2× finer pass, then a 100× tighter / 4× finer pass with a much longer
// transient for points that start far off the attractor.
func DefaultLadder() []Rung {
	return []Rung{
		{Name: "base"},
		{Name: "tight", TolDiv: 10, StepsFactor: 2, AdjointFactor: 2, TransientExtra: 20},
		{Name: "max", TolDiv: 100, StepsFactor: 4, AdjointFactor: 4, TransientExtra: 60},
	}
}

// Attempt records one ladder rung tried on one point.
type Attempt struct {
	Rung     int           // index into the ladder
	RungName string        // Rung.Name
	Err      error         // nil on success
	Trace    core.Trace    // per-stage diagnostics of this attempt
	Wall     time.Duration // wall-clock time of this attempt
}

// PointResult is the outcome of one point: either a characterisation or a
// structured failure, plus the full retry history.
type PointResult struct {
	Index    int    // position in the input slice
	Name     string // Point.Name
	Result   *core.Result
	Err      error // nil iff Result != nil; the last attempt's error otherwise
	Attempts []Attempt
	Wall     time.Duration // total wall-clock time across all attempts
}

// OK reports whether the point characterised successfully.
func (r *PointResult) OK() bool { return r.Err == nil && r.Result != nil }

// Config tunes a batch run.
type Config struct {
	// Workers bounds the worker pool (default GOMAXPROCS, capped at the
	// number of points).
	Workers int
	// Ladder is the escalation sequence (default DefaultLadder()). The
	// first rung is the base attempt; an empty slice gets one plain rung.
	Ladder []Rung
	// OnAttempt, when non-nil, streams progress: it is called after every
	// attempt (success or failure) on any point. Calls are serialised by
	// the engine, so the hook needs no locking of its own.
	OnAttempt func(index int, name string, att Attempt)
	// OnPoint, when non-nil, is called once per point as it completes,
	// serialised like OnAttempt. Points complete out of order.
	OnPoint func(res PointResult)
}

// Retryable reports whether err is a refinable pipeline failure — one the
// retry ladder may cure with tighter tolerances, more steps, or a longer
// transient. Structural errors (bad dimensions, unstable cycles, degenerate
// monodromy) are not retryable.
func Retryable(err error) bool {
	return errors.Is(err, shooting.ErrNoConvergence) ||
		errors.Is(err, floquet.ErrNoUnitMultiplier) ||
		errors.Is(err, floquet.ErrAdjointClosure)
}

// applyRung builds the options for one attempt: a deep-enough copy of the
// point's base options (caller structs are never mutated) with the rung's
// scalings applied against the base values or the solver defaults.
func applyRung(base *core.Options, r Rung) *core.Options {
	out := core.Options{}
	if base != nil {
		out = *base
	}
	sc := shooting.Options{}
	if out.Shooting != nil {
		sc = *out.Shooting
	}
	fc := floquet.Options{}
	if out.Floquet != nil {
		fc = *out.Floquet
	}
	if r.TolDiv > 1 {
		if sc.Tol <= 0 {
			sc.Tol = defaultTol
		}
		sc.Tol /= r.TolDiv
	}
	if r.StepsFactor > 1 {
		if sc.StepsPerPeriod <= 0 {
			sc.StepsPerPeriod = defaultStepsPerPeriod
		}
		sc.StepsPerPeriod = int(float64(sc.StepsPerPeriod) * r.StepsFactor)
	}
	if r.TransientExtra > 0 {
		if sc.Transient <= 0 {
			sc.Transient = defaultTransient
		}
		sc.Transient += r.TransientExtra
	}
	// Explicit adjoint step counts scale directly; the default (0) already
	// auto-scales with the orbit resolution raised by StepsFactor.
	if r.AdjointFactor > 1 && fc.Steps > 0 {
		fc.Steps = int(float64(fc.Steps) * r.AdjointFactor)
	}
	out.Shooting = &sc
	out.Floquet = &fc
	return &out
}

// Run characterises every point and returns one PointResult per point, in
// input order. Failures are per-point and structured; Run itself never
// fails. Points must not share mutable state (a dynsys.System may be shared
// only if its methods are safe for concurrent use).
func Run(points []Point, cfg *Config) []PointResult {
	var c Config
	if cfg != nil {
		c = *cfg
	}
	ladder := c.Ladder
	if len(ladder) == 0 {
		ladder = DefaultLadder()
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	if workers < 1 {
		workers = 1
	}

	out := make([]PointResult, len(points))
	var hookMu sync.Mutex // serialises user hooks across workers
	attempt := func(i int, name string, att Attempt) {
		if c.OnAttempt == nil {
			return
		}
		hookMu.Lock()
		defer hookMu.Unlock()
		c.OnAttempt(i, name, att)
	}
	done := func(res PointResult) {
		if c.OnPoint == nil {
			return
		}
		hookMu.Lock()
		defer hookMu.Unlock()
		c.OnPoint(res)
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range next {
				out[k] = runPoint(k, points[k], ladder, attempt)
				done(out[k])
			}
		}()
	}
	for k := range points {
		next <- k
	}
	close(next)
	wg.Wait()
	return out
}

// runPoint walks one point up the ladder until an attempt succeeds or the
// failure is not retryable.
func runPoint(index int, p Point, ladder []Rung, attempt func(int, string, Attempt)) PointResult {
	start := time.Now()
	res := PointResult{Index: index, Name: p.Name}
	for ri, rung := range ladder {
		opts := applyRung(p.Opts, rung)
		var tr core.Trace
		opts.Trace = &tr
		aStart := time.Now()
		r, err := core.Characterise(p.System, p.X0, p.TGuess, opts)
		att := Attempt{Rung: ri, RungName: rung.Name, Err: err, Trace: tr, Wall: time.Since(aStart)}
		res.Attempts = append(res.Attempts, att)
		attempt(index, p.Name, att)
		if err == nil {
			res.Result, res.Err = r, nil
			break
		}
		res.Err = err
		if !Retryable(err) {
			break
		}
	}
	res.Wall = time.Since(start)
	return res
}
