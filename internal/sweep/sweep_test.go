package sweep

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/floquet"
	"repro/internal/ode"
	"repro/internal/osc"
	"repro/internal/shooting"
)

func hopfGrid(n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		h := &osc.Hopf{Lambda: 1, Omega: 2 + 0.5*float64(i), Sigma: 0.02}
		pts[i] = Point{
			Name:   "hopf-" + string(rune('a'+i)),
			System: h,
			X0:     []float64{1, 0.1},
			TGuess: h.Period() * 1.05,
		}
	}
	return pts
}

func TestRunMatchesSerialCharacterise(t *testing.T) {
	pts := hopfGrid(6)
	results := Run(pts, nil)
	if len(results) != len(pts) {
		t.Fatalf("%d results for %d points", len(results), len(pts))
	}
	for i, r := range results {
		if r.Index != i || r.Name != pts[i].Name {
			t.Fatalf("result %d out of order: index=%d name=%q", i, r.Index, r.Name)
		}
		if !r.OK() {
			t.Fatalf("point %d failed: %v", i, r.Err)
		}
		if len(r.Attempts) != 1 || r.Attempts[0].RungName != "base" {
			t.Fatalf("point %d: easy point needed %d attempts", i, len(r.Attempts))
		}
		want, err := core.Characterise(pts[i].System, pts[i].X0, pts[i].TGuess, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Result.C-want.C) > 1e-12*want.C {
			t.Fatalf("point %d: sweep c=%g, serial c=%g", i, r.Result.C, want.C)
		}
		if r.Attempts[0].Trace.Shooting.Iters == 0 || r.Attempts[0].Trace.Wall <= 0 {
			t.Fatalf("point %d: attempt trace empty: %+v", i, r.Attempts[0].Trace)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	pts := hopfGrid(5)
	serial := Run(pts, &Config{Workers: 1})
	parallel := Run(pts, &Config{Workers: 8})
	for i := range serial {
		if serial[i].Result.C != parallel[i].Result.C {
			t.Fatalf("point %d: c differs across worker counts", i)
		}
	}
}

// A stiff Van der Pol cycle under-resolved at StepsPerPeriod=60 walks the
// whole ladder: the base rung loses the unit multiplier, the tight rung
// (2x steps) fails adjoint closure, and the max rung (4x steps) converges.
func hardVdPPoint() Point {
	return Point{
		Name:   "vdp-hard",
		System: &osc.VanDerPol{Mu: 3, Sigma: 0.01},
		X0:     []float64{2, 0},
		TGuess: 9.0,
		Opts:   &core.Options{Shooting: &shooting.Options{StepsPerPeriod: 60}},
	}
}

func TestRunLadderRecoversHardPoint(t *testing.T) {
	pts := append(hopfGrid(2), hardVdPPoint())
	results := Run(pts, nil)
	r := results[2]
	if !r.OK() {
		t.Fatalf("ladder failed to recover hard point: %v", r.Err)
	}
	if len(r.Attempts) != 3 {
		t.Fatalf("expected 3 attempts, got %d", len(r.Attempts))
	}
	if !errors.Is(r.Attempts[0].Err, floquet.ErrNoUnitMultiplier) {
		t.Fatalf("attempt 0: want ErrNoUnitMultiplier, got %v", r.Attempts[0].Err)
	}
	if !errors.Is(r.Attempts[1].Err, floquet.ErrAdjointClosure) {
		t.Fatalf("attempt 1: want ErrAdjointClosure, got %v", r.Attempts[1].Err)
	}
	if r.Attempts[2].Err != nil || r.Attempts[2].RungName != "max" {
		t.Fatalf("attempt 2: %q err=%v", r.Attempts[2].RungName, r.Attempts[2].Err)
	}
	// The recovered characterisation must agree with a well-resolved run.
	ref, err := core.Characterise(pts[2].System, pts[2].X0, pts[2].TGuess,
		&core.Options{Shooting: &shooting.Options{StepsPerPeriod: 2000}})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(r.Result.C-ref.C) / ref.C; rel > 1e-3 {
		t.Fatalf("recovered c off by %g relative", rel)
	}
	// Failed attempts still carry diagnostics showing how far they got.
	if r.Attempts[0].Trace.Floquet.UnitErr < 1e-3 {
		t.Fatalf("attempt 0 trace should record the large unit error, got %g", r.Attempts[0].Trace.Floquet.UnitErr)
	}
}

func TestRunStructuredFailureDoesNotAbortBatch(t *testing.T) {
	impossible := Point{
		Name:   "impossible",
		System: &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02},
		X0:     []float64{1, 0.1},
		TGuess: 1.05,
		// A closure tolerance below anything the ladder can reach: every
		// rung fails with ErrAdjointClosure, exhausting the ladder.
		Opts: &core.Options{Floquet: &floquet.Options{Steps: 30, MaxPeriodDrift: 1e-13}},
	}
	pts := append(hopfGrid(3), impossible)
	results := Run(pts, nil)
	for i := 0; i < 3; i++ {
		if !results[i].OK() {
			t.Fatalf("good point %d failed: %v", i, results[i].Err)
		}
	}
	bad := results[3]
	if bad.OK() {
		t.Fatal("impossible point reported success")
	}
	if !errors.Is(bad.Err, floquet.ErrAdjointClosure) {
		t.Fatalf("want structured ErrAdjointClosure, got %v", bad.Err)
	}
	if len(bad.Attempts) != 3 {
		t.Fatalf("ladder should be exhausted: %d attempts", len(bad.Attempts))
	}
	for i, a := range bad.Attempts {
		if a.Err == nil {
			t.Fatalf("attempt %d unexpectedly succeeded", i)
		}
		if a.Trace.Floquet.ClosureErr <= 0 {
			t.Fatalf("attempt %d lost its closure diagnostic", i)
		}
	}
}

func TestRunNonRetryableFailsFast(t *testing.T) {
	pts := []Point{{
		Name:   "bad-guess",
		System: &osc.Hopf{Lambda: 1, Omega: 2, Sigma: 0.01},
		X0:     []float64{1, 0},
		TGuess: -1, // structural error: no ladder rung can fix a negative guess
	}}
	results := Run(pts, nil)
	if results[0].OK() {
		t.Fatal("expected failure")
	}
	if len(results[0].Attempts) != 1 {
		t.Fatalf("non-retryable error must not climb the ladder: %d attempts", len(results[0].Attempts))
	}
}

func TestRetryableClassification(t *testing.T) {
	for _, err := range []error{shooting.ErrNoConvergence, floquet.ErrNoUnitMultiplier, floquet.ErrAdjointClosure} {
		if !Retryable(err) {
			t.Fatalf("%v should be retryable", err)
		}
		// Wrapped, as the pipeline returns them.
		if !Retryable(errors.Join(errors.New("core: floquet analysis"), err)) {
			t.Fatalf("wrapped %v should be retryable", err)
		}
	}
	for _, err := range []error{nil, errors.New("boom"), floquet.ErrUnstableCycle} {
		if Retryable(err) {
			t.Fatalf("%v should not be retryable", err)
		}
	}
}

func TestApplyRungScalesAgainstDefaults(t *testing.T) {
	r := Rung{TolDiv: 10, StepsFactor: 2, AdjointFactor: 2, TransientExtra: 20}
	o := applyRung(nil, r)
	if math.Abs(o.Shooting.Tol-1e-11) > 1e-26 {
		t.Fatalf("Tol = %g", o.Shooting.Tol)
	}
	if o.Shooting.StepsPerPeriod != 4000 {
		t.Fatalf("StepsPerPeriod = %d", o.Shooting.StepsPerPeriod)
	}
	if o.Shooting.Transient != 40 {
		t.Fatalf("Transient = %g", o.Shooting.Transient)
	}
	if o.Floquet.Steps != 0 {
		t.Fatal("default adjoint steps must stay auto-scaled")
	}

	base := &core.Options{
		Shooting: &shooting.Options{Tol: 1e-8, StepsPerPeriod: 500, Transient: 5},
		Floquet:  &floquet.Options{Steps: 100},
	}
	o = applyRung(base, r)
	if math.Abs(o.Shooting.Tol-1e-9) > 1e-24 || o.Shooting.StepsPerPeriod != 1000 || o.Shooting.Transient != 25 {
		t.Fatalf("base scaling wrong: %+v", o.Shooting)
	}
	if o.Floquet.Steps != 200 {
		t.Fatalf("adjoint steps = %d", o.Floquet.Steps)
	}
	// The caller's structs must never be mutated.
	if base.Shooting.Tol != 1e-8 || base.Shooting.StepsPerPeriod != 500 || base.Floquet.Steps != 100 {
		t.Fatalf("base options mutated: %+v %+v", base.Shooting, base.Floquet)
	}
}

func TestHooksStreamProgress(t *testing.T) {
	pts := append(hopfGrid(4), hardVdPPoint())
	var attempts, points int
	var names []string
	results := Run(pts, &Config{
		Workers:   4,
		OnAttempt: func(i int, name string, a Attempt) { attempts++ },
		OnPoint: func(r PointResult) {
			points++
			names = append(names, r.Name)
		},
	})
	wantAttempts := 0
	for _, r := range results {
		wantAttempts += len(r.Attempts)
	}
	if attempts != wantAttempts {
		t.Fatalf("OnAttempt fired %d times, want %d", attempts, wantAttempts)
	}
	if points != len(pts) || len(names) != len(pts) {
		t.Fatalf("OnPoint fired %d times, want %d", points, len(pts))
	}
}

func TestRunParallelSpeedup(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("needs >= 4 CPUs, have %d", runtime.GOMAXPROCS(0))
	}
	pts := hopfGrid(8)
	t0 := time.Now()
	Run(pts, &Config{Workers: 1})
	serial := time.Since(t0)
	t0 = time.Now()
	Run(pts, &Config{Workers: runtime.GOMAXPROCS(0)})
	parallel := time.Since(t0)
	if speedup := serial.Seconds() / parallel.Seconds(); speedup < 2 {
		t.Fatalf("speedup %.2fx < 2x (serial %v, parallel %v)", speedup, serial, parallel)
	}
}

func TestRetryableIncludesIntegratorFailures(t *testing.T) {
	// Regression: integrator-level refinable failures (step-size underflow,
	// Newton divergence, non-finite states) must escalate through the
	// ladder, not abort the point on the first rung.
	wrapped := fmt.Errorf("core: periodic steady state: shooting: transient integration: %w: %w",
		shooting.ErrIntegration, ode.ErrStepSizeUnderflow)
	if !Retryable(wrapped) {
		t.Fatalf("underflow through shooting not retryable: %v", wrapped)
	}
	for _, err := range []error{shooting.ErrIntegration, ode.ErrStepSizeUnderflow, ode.ErrNewtonDiverged} {
		if !Retryable(err) {
			t.Fatalf("%v should be retryable", err)
		}
	}
	// Budget cut-offs and panics are never retryable: repeating under the
	// same budget cannot help, and a panicking model stays broken.
	for _, err := range []error{
		budget.ErrCanceled,
		budget.ErrBudgetExceeded,
		fmt.Errorf("sweep: point cut off: %w", budget.ErrBudgetExceeded),
		error(&PanicError{Point: "p", Rung: "base", Value: "boom"}),
	} {
		if Retryable(err) {
			t.Fatalf("%v must not be retryable", err)
		}
	}
}

// nanEverywhere is a model whose vector field is never finite: every rung's
// integration fails with a refinable integrator error.
type nanEverywhere struct{ osc.Hopf }

func (m *nanEverywhere) Eval(x, dst []float64) {
	m.Hopf.Eval(x, dst)
	dst[0] = math.NaN()
}

func TestIntegratorFailureEscalatesThroughLadder(t *testing.T) {
	pts := append(hopfGrid(1), Point{
		Name:   "nan-model",
		System: &nanEverywhere{osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}},
		X0:     []float64{1, 0.1},
		TGuess: 1.05,
	})
	results := Run(pts, nil)
	if !results[0].OK() {
		t.Fatalf("good point failed: %v", results[0].Err)
	}
	bad := results[1]
	if bad.OK() {
		t.Fatal("NaN model reported success")
	}
	if !errors.Is(bad.Err, shooting.ErrIntegration) {
		t.Fatalf("failure lost the ErrIntegration tag: %v", bad.Err)
	}
	if !errors.Is(bad.Err, ode.ErrNonFinite) && !errors.Is(bad.Err, ode.ErrStepSizeUnderflow) {
		t.Fatalf("failure lost the integrator sentinel: %v", bad.Err)
	}
	// The refinable classification must have walked the whole ladder.
	if len(bad.Attempts) != len(DefaultLadder()) {
		t.Fatalf("integrator failure aborted after %d attempts, want full ladder of %d", len(bad.Attempts), len(DefaultLadder()))
	}
}

// panicModel panics inside Eval once the state leaves a disc — emulating an
// out-of-range table lookup in a device model.
type panicModel struct{ osc.Hopf }

func (m *panicModel) Eval(x, dst []float64) {
	if x[0]*x[0]+x[1]*x[1] > 4 {
		panic("device model evaluated outside its table range")
	}
	m.Hopf.Eval(x, dst)
}

func TestPanickingModelIsolated(t *testing.T) {
	pts := append(hopfGrid(3), Point{
		Name:   "panicky",
		System: &panicModel{osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}},
		X0:     []float64{3, 0}, // starts outside the disc: first Eval panics
		TGuess: 1,
	})
	results := Run(pts, &Config{Workers: 2})
	for i := 0; i < 3; i++ {
		if !results[i].OK() {
			t.Fatalf("good point %d failed alongside a panicking one: %v", i, results[i].Err)
		}
	}
	bad := results[3]
	if bad.OK() {
		t.Fatal("panicking model reported success")
	}
	if !errors.Is(bad.Err, ErrModelPanic) {
		t.Fatalf("want ErrModelPanic, got %v", bad.Err)
	}
	var pe *PanicError
	if !errors.As(bad.Err, &pe) {
		t.Fatalf("cannot recover *PanicError from %v", bad.Err)
	}
	if pe.Point != "panicky" || pe.Rung != "base" {
		t.Fatalf("panic metadata wrong: %+v", pe)
	}
	if pe.Value == nil || len(pe.Stack) == 0 {
		t.Fatal("panic value or stack lost")
	}
	if len(bad.Attempts) != 1 {
		t.Fatalf("panic must not be retried: %d attempts", len(bad.Attempts))
	}
}

func TestCancelMidBatchPreservesCompletedPoints(t *testing.T) {
	before := runtime.NumGoroutine()
	pts := hopfGrid(12)
	tok, cancel := budget.WithCancel(nil)
	defer cancel()
	var pointsDone int
	start := time.Now()
	results := Run(pts, &Config{
		Workers: 1,
		Budget:  tok,
		OnPoint: func(r PointResult) {
			pointsDone++
			if pointsDone == 1 {
				cancel() // cut the batch after the first completed point
			}
		},
	})
	elapsed := time.Since(start)
	if elapsed > 30*time.Second {
		t.Fatalf("cancelled batch took %v to return", elapsed)
	}
	if len(results) != len(pts) {
		t.Fatalf("%d results for %d points", len(results), len(pts))
	}
	if !results[0].OK() {
		t.Fatalf("completed point lost after cancellation: %v", results[0].Err)
	}
	ok, failed := 0, 0
	for i, r := range results {
		if r.Name != pts[i].Name || r.Index != i {
			t.Fatalf("result %d mislabelled: %+v", i, r)
		}
		if r.OK() {
			ok++
			continue
		}
		failed++
		if !errors.Is(r.Err, budget.ErrCanceled) {
			t.Fatalf("pending point %d: want wrapped ErrCanceled, got %v", i, r.Err)
		}
	}
	if failed == 0 {
		t.Fatal("cancellation raced: every point completed")
	}
	if ok > 2 {
		t.Fatalf("%d points completed after a cancel issued during point 1", ok)
	}
	if pointsDone != len(pts) {
		t.Fatalf("OnPoint fired %d times, want %d (skipped points must be reported)", pointsDone, len(pts))
	}
	// No goroutine leaks: workers and attempt goroutines all wind down.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestPointTimeoutTyped(t *testing.T) {
	pts := hopfGrid(2)
	results := Run(pts, &Config{Workers: 2, PointTimeout: time.Nanosecond})
	for i, r := range results {
		if r.OK() {
			t.Fatalf("point %d beat a 1ns budget", i)
		}
		if !errors.Is(r.Err, budget.ErrBudgetExceeded) {
			t.Fatalf("point %d: want wrapped ErrBudgetExceeded, got %v", i, r.Err)
		}
	}
}

// blockingModel ignores cancellation entirely: one Eval call sleeps far past
// any deadline, emulating a model stuck in an external call. The sleep is a
// poll loop on a release flag so the test can unstick the abandoned attempt
// goroutine at cleanup — from the engine's point of view the model is just as
// unresponsive (it blocks orders of magnitude past AbandonGrace), but the
// goroutine unwinds promptly once the test is over instead of tripping the
// suite's leak check.
type blockingModel struct {
	osc.Hopf
	block    time.Duration
	released atomic.Bool
}

func (m *blockingModel) Eval(x, dst []float64) {
	deadline := time.Now().Add(m.block)
	for time.Now().Before(deadline) && !m.released.Load() {
		time.Sleep(10 * time.Millisecond)
	}
	m.Hopf.Eval(x, dst)
}

// newBlockingModel builds a blockingModel released at test cleanup.
func newBlockingModel(t *testing.T, block time.Duration) *blockingModel {
	m := &blockingModel{Hopf: osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}, block: block}
	t.Cleanup(func() { m.released.Store(true) })
	return m
}

func TestUnresponsiveModelAbandoned(t *testing.T) {
	pts := []Point{{
		Name:   "stuck",
		System: newBlockingModel(t, 3*time.Second),
		X0:     []float64{1, 0.1},
		TGuess: 1.05,
	}}
	start := time.Now()
	results := Run(pts, &Config{
		AttemptTimeout: 50 * time.Millisecond,
		AbandonGrace:   100 * time.Millisecond,
	})
	elapsed := time.Since(start)
	r := results[0]
	if r.OK() {
		t.Fatal("stuck model reported success")
	}
	if !errors.Is(r.Err, budget.ErrBudgetExceeded) {
		t.Fatalf("want wrapped ErrBudgetExceeded, got %v", r.Err)
	}
	if !strings.Contains(r.Err.Error(), "abandoned") {
		t.Fatalf("abandonment not recorded in error: %v", r.Err)
	}
	// Deadline + grace, not the model's 3s block (and nowhere near a full
	// characterisation's worth of blocked Evals).
	if elapsed > 2*time.Second {
		t.Fatalf("abandoning an unresponsive model took %v", elapsed)
	}
}

func TestCancelOnlyBudgetAbandonsBlockedModel(t *testing.T) {
	// Regression: with a cancel-only budget (no AttemptTimeout, PointTimeout,
	// or deadline — the pnsweep SIGINT-without--timeout shape) and a model
	// blocked inside Eval, the attempt supervisor used to select on its own
	// local cancel channel only, never waking on the batch cancel: Run hung
	// in wg.Wait() and AbandonGrace never applied.
	pts := []Point{{
		Name:   "stuck",
		System: newBlockingModel(t, 5*time.Second),
		X0:     []float64{1, 0.1},
		TGuess: 1.05,
	}}
	tok, cancel := budget.WithCancel(nil)
	defer cancel()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results := Run(pts, &Config{Budget: tok, AbandonGrace: 100 * time.Millisecond})
	elapsed := time.Since(start)
	// Cancel delay + grace + scheduling slack — far below the model's 5s
	// block, and a hang here means the supervisor never saw the cancel.
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled batch took %v to return (AbandonGrace=100ms)", elapsed)
	}
	r := results[0]
	if r.OK() {
		t.Fatal("blocked model reported success")
	}
	if !errors.Is(r.Err, budget.ErrCanceled) {
		t.Fatalf("want wrapped ErrCanceled, got %v", r.Err)
	}
	if !strings.Contains(r.Err.Error(), "abandoned") {
		t.Fatalf("abandonment not recorded in error: %v", r.Err)
	}
}

func TestDegradedPointKeepsConvergedPSS(t *testing.T) {
	// Shooting converges on every rung; Floquet always fails the closure
	// tolerance. The point fails overall but must keep the best PSS.
	impossible := Point{
		Name:   "degraded",
		System: &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02},
		X0:     []float64{1, 0.1},
		TGuess: 1.05,
		Opts:   &core.Options{Floquet: &floquet.Options{Steps: 30, MaxPeriodDrift: 1e-13}},
	}
	results := Run([]Point{impossible}, nil)
	r := results[0]
	if r.OK() {
		t.Fatal("impossible point reported success")
	}
	if !r.Degraded() {
		t.Fatalf("converged PSS lost on floquet failure: PSS=%v err=%v", r.PSS, r.Err)
	}
	if math.Abs(r.PSS.T-1) > 1e-6 {
		t.Fatalf("partial PSS period %g, want ≈1", r.PSS.T)
	}
	if r.PSS.Residual > 1e-8 {
		t.Fatalf("partial PSS residual %g not converged", r.PSS.Residual)
	}
}
