package sweep

import (
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/floquet"
	"repro/internal/osc"
	"repro/internal/shooting"
)

func hopfGrid(n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		h := &osc.Hopf{Lambda: 1, Omega: 2 + 0.5*float64(i), Sigma: 0.02}
		pts[i] = Point{
			Name:   "hopf-" + string(rune('a'+i)),
			System: h,
			X0:     []float64{1, 0.1},
			TGuess: h.Period() * 1.05,
		}
	}
	return pts
}

func TestRunMatchesSerialCharacterise(t *testing.T) {
	pts := hopfGrid(6)
	results := Run(pts, nil)
	if len(results) != len(pts) {
		t.Fatalf("%d results for %d points", len(results), len(pts))
	}
	for i, r := range results {
		if r.Index != i || r.Name != pts[i].Name {
			t.Fatalf("result %d out of order: index=%d name=%q", i, r.Index, r.Name)
		}
		if !r.OK() {
			t.Fatalf("point %d failed: %v", i, r.Err)
		}
		if len(r.Attempts) != 1 || r.Attempts[0].RungName != "base" {
			t.Fatalf("point %d: easy point needed %d attempts", i, len(r.Attempts))
		}
		want, err := core.Characterise(pts[i].System, pts[i].X0, pts[i].TGuess, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Result.C-want.C) > 1e-12*want.C {
			t.Fatalf("point %d: sweep c=%g, serial c=%g", i, r.Result.C, want.C)
		}
		if r.Attempts[0].Trace.Shooting.Iters == 0 || r.Attempts[0].Trace.Wall <= 0 {
			t.Fatalf("point %d: attempt trace empty: %+v", i, r.Attempts[0].Trace)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	pts := hopfGrid(5)
	serial := Run(pts, &Config{Workers: 1})
	parallel := Run(pts, &Config{Workers: 8})
	for i := range serial {
		if serial[i].Result.C != parallel[i].Result.C {
			t.Fatalf("point %d: c differs across worker counts", i)
		}
	}
}

// A stiff Van der Pol cycle under-resolved at StepsPerPeriod=60 walks the
// whole ladder: the base rung loses the unit multiplier, the tight rung
// (2x steps) fails adjoint closure, and the max rung (4x steps) converges.
func hardVdPPoint() Point {
	return Point{
		Name:   "vdp-hard",
		System: &osc.VanDerPol{Mu: 3, Sigma: 0.01},
		X0:     []float64{2, 0},
		TGuess: 9.0,
		Opts:   &core.Options{Shooting: &shooting.Options{StepsPerPeriod: 60}},
	}
}

func TestRunLadderRecoversHardPoint(t *testing.T) {
	pts := append(hopfGrid(2), hardVdPPoint())
	results := Run(pts, nil)
	r := results[2]
	if !r.OK() {
		t.Fatalf("ladder failed to recover hard point: %v", r.Err)
	}
	if len(r.Attempts) != 3 {
		t.Fatalf("expected 3 attempts, got %d", len(r.Attempts))
	}
	if !errors.Is(r.Attempts[0].Err, floquet.ErrNoUnitMultiplier) {
		t.Fatalf("attempt 0: want ErrNoUnitMultiplier, got %v", r.Attempts[0].Err)
	}
	if !errors.Is(r.Attempts[1].Err, floquet.ErrAdjointClosure) {
		t.Fatalf("attempt 1: want ErrAdjointClosure, got %v", r.Attempts[1].Err)
	}
	if r.Attempts[2].Err != nil || r.Attempts[2].RungName != "max" {
		t.Fatalf("attempt 2: %q err=%v", r.Attempts[2].RungName, r.Attempts[2].Err)
	}
	// The recovered characterisation must agree with a well-resolved run.
	ref, err := core.Characterise(pts[2].System, pts[2].X0, pts[2].TGuess,
		&core.Options{Shooting: &shooting.Options{StepsPerPeriod: 2000}})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(r.Result.C-ref.C) / ref.C; rel > 1e-3 {
		t.Fatalf("recovered c off by %g relative", rel)
	}
	// Failed attempts still carry diagnostics showing how far they got.
	if r.Attempts[0].Trace.Floquet.UnitErr < 1e-3 {
		t.Fatalf("attempt 0 trace should record the large unit error, got %g", r.Attempts[0].Trace.Floquet.UnitErr)
	}
}

func TestRunStructuredFailureDoesNotAbortBatch(t *testing.T) {
	impossible := Point{
		Name:   "impossible",
		System: &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02},
		X0:     []float64{1, 0.1},
		TGuess: 1.05,
		// A closure tolerance below anything the ladder can reach: every
		// rung fails with ErrAdjointClosure, exhausting the ladder.
		Opts: &core.Options{Floquet: &floquet.Options{Steps: 30, MaxPeriodDrift: 1e-13}},
	}
	pts := append(hopfGrid(3), impossible)
	results := Run(pts, nil)
	for i := 0; i < 3; i++ {
		if !results[i].OK() {
			t.Fatalf("good point %d failed: %v", i, results[i].Err)
		}
	}
	bad := results[3]
	if bad.OK() {
		t.Fatal("impossible point reported success")
	}
	if !errors.Is(bad.Err, floquet.ErrAdjointClosure) {
		t.Fatalf("want structured ErrAdjointClosure, got %v", bad.Err)
	}
	if len(bad.Attempts) != 3 {
		t.Fatalf("ladder should be exhausted: %d attempts", len(bad.Attempts))
	}
	for i, a := range bad.Attempts {
		if a.Err == nil {
			t.Fatalf("attempt %d unexpectedly succeeded", i)
		}
		if a.Trace.Floquet.ClosureErr <= 0 {
			t.Fatalf("attempt %d lost its closure diagnostic", i)
		}
	}
}

func TestRunNonRetryableFailsFast(t *testing.T) {
	pts := []Point{{
		Name:   "bad-guess",
		System: &osc.Hopf{Lambda: 1, Omega: 2, Sigma: 0.01},
		X0:     []float64{1, 0},
		TGuess: -1, // structural error: no ladder rung can fix a negative guess
	}}
	results := Run(pts, nil)
	if results[0].OK() {
		t.Fatal("expected failure")
	}
	if len(results[0].Attempts) != 1 {
		t.Fatalf("non-retryable error must not climb the ladder: %d attempts", len(results[0].Attempts))
	}
}

func TestRetryableClassification(t *testing.T) {
	for _, err := range []error{shooting.ErrNoConvergence, floquet.ErrNoUnitMultiplier, floquet.ErrAdjointClosure} {
		if !Retryable(err) {
			t.Fatalf("%v should be retryable", err)
		}
		// Wrapped, as the pipeline returns them.
		if !Retryable(errors.Join(errors.New("core: floquet analysis"), err)) {
			t.Fatalf("wrapped %v should be retryable", err)
		}
	}
	for _, err := range []error{nil, errors.New("boom"), floquet.ErrUnstableCycle} {
		if Retryable(err) {
			t.Fatalf("%v should not be retryable", err)
		}
	}
}

func TestApplyRungScalesAgainstDefaults(t *testing.T) {
	r := Rung{TolDiv: 10, StepsFactor: 2, AdjointFactor: 2, TransientExtra: 20}
	o := applyRung(nil, r)
	if math.Abs(o.Shooting.Tol-1e-11) > 1e-26 {
		t.Fatalf("Tol = %g", o.Shooting.Tol)
	}
	if o.Shooting.StepsPerPeriod != 4000 {
		t.Fatalf("StepsPerPeriod = %d", o.Shooting.StepsPerPeriod)
	}
	if o.Shooting.Transient != 40 {
		t.Fatalf("Transient = %g", o.Shooting.Transient)
	}
	if o.Floquet.Steps != 0 {
		t.Fatal("default adjoint steps must stay auto-scaled")
	}

	base := &core.Options{
		Shooting: &shooting.Options{Tol: 1e-8, StepsPerPeriod: 500, Transient: 5},
		Floquet:  &floquet.Options{Steps: 100},
	}
	o = applyRung(base, r)
	if math.Abs(o.Shooting.Tol-1e-9) > 1e-24 || o.Shooting.StepsPerPeriod != 1000 || o.Shooting.Transient != 25 {
		t.Fatalf("base scaling wrong: %+v", o.Shooting)
	}
	if o.Floquet.Steps != 200 {
		t.Fatalf("adjoint steps = %d", o.Floquet.Steps)
	}
	// The caller's structs must never be mutated.
	if base.Shooting.Tol != 1e-8 || base.Shooting.StepsPerPeriod != 500 || base.Floquet.Steps != 100 {
		t.Fatalf("base options mutated: %+v %+v", base.Shooting, base.Floquet)
	}
}

func TestHooksStreamProgress(t *testing.T) {
	pts := append(hopfGrid(4), hardVdPPoint())
	var attempts, points int
	var names []string
	results := Run(pts, &Config{
		Workers:   4,
		OnAttempt: func(i int, name string, a Attempt) { attempts++ },
		OnPoint: func(r PointResult) {
			points++
			names = append(names, r.Name)
		},
	})
	wantAttempts := 0
	for _, r := range results {
		wantAttempts += len(r.Attempts)
	}
	if attempts != wantAttempts {
		t.Fatalf("OnAttempt fired %d times, want %d", attempts, wantAttempts)
	}
	if points != len(pts) || len(names) != len(pts) {
		t.Fatalf("OnPoint fired %d times, want %d", points, len(pts))
	}
}

func TestRunParallelSpeedup(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("needs >= 4 CPUs, have %d", runtime.GOMAXPROCS(0))
	}
	pts := hopfGrid(8)
	t0 := time.Now()
	Run(pts, &Config{Workers: 1})
	serial := time.Since(t0)
	t0 = time.Now()
	Run(pts, &Config{Workers: runtime.GOMAXPROCS(0)})
	parallel := time.Since(t0)
	if speedup := serial.Seconds() / parallel.Seconds(); speedup < 2 {
		t.Fatalf("speedup %.2fx < 2x (serial %v, parallel %v)", speedup, serial, parallel)
	}
}
