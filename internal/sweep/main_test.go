package sweep

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the suite if any test leaks a goroutine — abandoned attempt
// goroutines after cancellation, pool workers that never drain, hook
// serialisers blocked on a closed batch.
func TestMain(m *testing.M) { leakcheck.Main(m) }
