package sweep

import "repro/internal/obs"

// sweepInstruments are the batch-engine metrics: point outcomes, ladder
// pressure (attempts per rung), live queue depth, and the point-latency
// distribution.
type sweepInstruments struct {
	pointsOK       *obs.Counter    // pn_sweep_points_total{outcome="ok"}
	pointsCached   *obs.Counter    // pn_sweep_points_total{outcome="cached"}
	pointsDegraded *obs.Counter    // pn_sweep_points_total{outcome="degraded"}
	pointsFailed   *obs.Counter    // pn_sweep_points_total{outcome="failed"}
	pointsSkipped  *obs.Counter    // pn_sweep_points_total{outcome="skipped"}
	attempts       *obs.CounterVec // pn_sweep_attempts_total{rung}
	abandoned      *obs.Counter    // pn_sweep_abandoned_total
	queueDepth     *obs.Gauge      // pn_sweep_queue_depth
	pointSeconds   *obs.Histogram  // pn_sweep_point_seconds
	batches        *obs.CounterVec // pn_sweep_batches_total{outcome}
	pssReuses      *obs.Counter    // pn_sweep_pss_reuse_total
	flightDumps    *obs.Counter    // pn_sweep_flight_dumps_total
}

var sweepMetrics = obs.NewView(func(r *obs.Registry) *sweepInstruments {
	points := r.CounterVec("pn_sweep_points_total", "Sweep points finished, by outcome (ok, cached = served from the result cache without running the pipeline, degraded = failed but with a converged PSS, failed, skipped = never started because the batch budget tripped).", "outcome")
	return &sweepInstruments{
		pointsOK:       points.With("ok"),
		pointsCached:   points.With("cached"),
		pointsDegraded: points.With("degraded"),
		pointsFailed:   points.With("failed"),
		pointsSkipped:  points.With("skipped"),
		attempts:       r.CounterVec("pn_sweep_attempts_total", "Ladder attempts run, by rung name.", "rung"),
		abandoned:      r.Counter("pn_sweep_abandoned_total", "Attempts abandoned because the model ignored cancellation past the grace period."),
		queueDepth:     r.Gauge("pn_sweep_queue_depth", "Points of the current batch not yet finished."),
		pointSeconds:   r.Histogram("pn_sweep_point_seconds", "Wall-clock time per sweep point across its whole retry ladder.", obs.ExpBuckets(0.001, 4, 12)),
		batches:        r.CounterVec("pn_sweep_batches_total", "Lockstep base-rung batches run, by outcome (ok = batch completed and lanes resolved individually, fallback = batch-level infrastructure failure sent every lane to the scalar path, abandoned = the batch ignored cancellation past the grace period).", "outcome"),
		pssReuses:      r.Counter("pn_sweep_pss_reuse_total", "Retry-ladder attempts that skipped Newton shooting by reusing the previous attempt's converged periodic steady state."),
		flightDumps:    r.Counter("pn_sweep_flight_dumps_total", "Flight-recorder dumps attached to crashed attempts (panic, budget/timeout cut-off, abandonment)."),
	}
})
