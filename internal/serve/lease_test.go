package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// leasedSlowSweep is slowSweep with a lease TTL attached.
func leasedSlowSweep(n int, ttl time.Duration) SweepRequest {
	req := slowSweep(n)
	req.LeaseTTLMS = int64(ttl / time.Millisecond)
	return req
}

// TestLeaseExpiryCancelsJob submits a leased job and never renews it: the
// worker must cancel the job itself when the TTL lapses, and the cancellation
// must carry the budget identity so a coordinator can tell "lease expired"
// from "point diverged".
func TestLeaseExpiryCancelsJob(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, st := postJSON(t, ts.URL+"/v1/sweep", leasedSlowSweep(30, 300*time.Millisecond))
	done := waitState(t, ts.URL, st.ID, terminal)
	if done.State != StateCanceled {
		t.Fatalf("unrenewed lease: state %q, want canceled (%+v)", done.State, done)
	}
	if done.Error == nil || !errors.Is(done.Error, budget.ErrCanceled) {
		t.Fatalf("lease expiry error %v does not wrap budget.ErrCanceled", done.Error)
	}
	if got := reg.Snapshot().Counter("pn_serve_lease_expirations_total", ""); got != 1 {
		t.Fatalf("lease expirations = %d, want 1", got)
	}
}

// TestLeaseRenewKeepsJobAlive heartbeats a leased job faster than its TTL and
// checks it runs to completion — then stops renewing a second leased job only
// after it went terminal, which must be a harmless no-op (no late self-cancel
// flipping a done job's state).
func TestLeaseRenewKeepsJobAlive(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, st := postJSON(t, ts.URL+"/v1/sweep", leasedSlowSweep(6, 400*time.Millisecond))

	// Heartbeat at TTL/4 until the job finishes.
	stop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				resp, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/renew", "application/json", nil)
				if err == nil {
					resp.Body.Close()
				}
			}
		}
	}()

	done := waitState(t, ts.URL, st.ID, terminal)
	close(stop)
	<-hbDone
	if done.State != StateDone {
		t.Fatalf("renewed lease: state %q, want done (%+v)", done.State, done)
	}
	if done.DonePoints != 6 {
		t.Fatalf("done points = %d, want 6", done.DonePoints)
	}

	// Renewing a terminal job: 200, state unchanged.
	resp, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/renew", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("renew on terminal job: %d, want 200", resp.StatusCode)
	}
	if st := getStatus(t, ts.URL, st.ID, false); st.State != StateDone {
		t.Fatalf("terminal job flipped to %q after late renew", st.State)
	}
	if got := reg.Snapshot().Counter("pn_serve_lease_renewals_total", ""); got < 2 {
		t.Fatalf("lease renewals = %d, want >= 2", got)
	}
	if got := reg.Snapshot().Counter("pn_serve_lease_expirations_total", ""); got != 0 {
		t.Fatalf("lease expirations = %d, want 0", got)
	}

	// Renewing an unknown job is a 404, not a crash.
	resp, err = http.Post(ts.URL+"/v1/jobs/nope/renew", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("renew on unknown job: %d, want 404", resp.StatusCode)
	}
}

// TestReadyzDuringDrain checks the drain window is observable: BeginDrain
// flips /readyz to 503 (and submissions to 503) while /healthz stays 200 and
// running jobs keep executing to completion.
func TestReadyzDuringDrain(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A slow job mid-flight when the drain starts.
	_, st := postJSON(t, ts.URL+"/v1/sweep", slowSweep(4))
	waitState(t, ts.URL, st.ID, func(s JobStatus) bool { return s.State == StateRunning })

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("pre-drain /readyz: %d, want 200", code)
	}

	s.BeginDrain()
	s.BeginDrain() // idempotent

	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz: %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("draining /healthz: %d, want 200 (liveness stays green)", code)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/sweep", slowSweep(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}

	// The in-flight job is not a casualty of the drain.
	done := waitState(t, ts.URL, st.ID, terminal)
	if done.State != StateDone {
		t.Fatalf("drain killed the in-flight job: state %q", done.State)
	}
}

// stubRunner records the request and returns canned results through both the
// OnSummary stream and the return value.
type stubRunner struct {
	got  RunnerRequest
	fail error
}

func (r *stubRunner) RunSweep(req RunnerRequest) error {
	r.got = req
	if r.fail != nil {
		return r.fail
	}
	for i, sp := range req.Specs {
		res := sweep.PointResult{Index: i, Name: sp.Name, Cached: i%2 == 1, Wall: time.Millisecond}
		if req.OnResult != nil {
			req.OnResult(res)
		}
		if req.OnSummary != nil {
			req.OnSummary(summarize(&res))
		}
	}
	if req.OnSummary != nil {
		req.OnSummary(PointSummary{Index: len(req.Specs) + 7, Name: "out-of-range"}) // must be dropped, not panic
	}
	if req.OnResult != nil {
		req.OnResult(sweep.PointResult{Index: len(req.Specs) + 7, Name: "out-of-range"}) // likewise
	}
	return nil
}

// TestRunnerDelegation installs a Config.Runner and checks the server hands
// the whole job to it — specs in order, job ID, budget token — and folds the
// runner's summaries into status counters and the SSE stream exactly as the
// in-process engine would.
func TestRunnerDelegation(t *testing.T) {
	r := &stubRunner{}
	s := New(Config{Workers: 3, MaxSweepWorkers: 4, Runner: r})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := SweepRequest{Points: []PointSpec{hopfSpec("a", 1e3), hopfSpec("b", 2e3), hopfSpec("c", 3e3)}, Workers: 2}
	_, st := postJSON(t, ts.URL+"/v1/sweep", req)
	done := waitState(t, ts.URL, st.ID, terminal)
	if done.State != StateDone {
		t.Fatalf("state %q, want done (%+v)", done.State, done)
	}
	if done.DonePoints != 3 || done.CachedPoints != 1 || done.FailedPoints != 3 {
		// Stub results have no Result payload, so OK() is false: all 3 count
		// as failed — which proves the counters come from the runner's
		// summaries, not from a parallel in-process run.
		t.Fatalf("counters done=%d cached=%d failed=%d, want 3/1/3", done.DonePoints, done.CachedPoints, done.FailedPoints)
	}
	if r.got.JobID != st.ID || r.got.Kind != "sweep" || len(r.got.Specs) != 3 || r.got.Workers != 2 || r.got.Tok == nil {
		t.Fatalf("runner request %+v does not match the job", r.got)
	}
	if r.got.Specs[1].Name != "b" {
		t.Fatalf("specs out of order: %+v", r.got.Specs)
	}
	// Point events flowed through the job's SSE stream.
	var points int
	for _, ev := range readSSE(t, ts.URL, st.ID) {
		if ev.Type == "point" {
			points++
		}
	}
	if points != 3 {
		t.Fatalf("SSE point events = %d, want 3", points)
	}

	// A runner job-level error fails the job.
	r.fail = errors.New("all workers unreachable")
	_, st2 := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Points: []PointSpec{hopfSpec("d", 4e3)}})
	if got := waitState(t, ts.URL, st2.ID, terminal); got.State != StateFailed {
		t.Fatalf("runner failure: state %q, want failed", got.State)
	}
}
