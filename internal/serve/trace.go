package serve

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/obs"
)

// The job trace is the distributed-tracing sibling of the job journal: every
// job owns a bounded buffer of completed span events — its own (the serve.job
// root span and the whole sweep subtree under it) plus events ingested from
// worker nodes via the coordinator's trace pull. With journalling on, each
// event is also appended to <JournalDir>/traces/<jobID>.jsonl as it arrives
// (plain unbuffered writes: a SIGKILL loses at most the line in flight), so a
// restarted coordinator still serves the pre-crash timeline. The traces/
// subdirectory keeps trace files out of the job-journal replay walk.

// traceSubdir is the journal subdirectory holding per-job trace files.
const traceSubdir = "traces"

// defaultTraceCap bounds a job's in-memory (and on-disk) trace buffer.
const defaultTraceCap = 4096

// procID identifies this process in multi-process traces.
var procID = func() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "unknown"
	}
	return host + ":" + strconv.Itoa(os.Getpid())
}()

// jobTrace collects one job's distributed timeline. It implements
// obs.Emitter for locally produced spans; worker-shipped batches arrive
// through ingest. Events are deduplicated by (proc, span) — a coordinator
// restart re-pulls worker traces, and re-dispatched leases dedup onto the
// same worker job — and the buffer is capped: once full, new events are
// dropped and counted rather than growing without bound.
type jobTrace struct {
	trace string // trace ID stamped on locally emitted events

	mu      sync.Mutex
	evs     []obs.Event
	seen    map[string]struct{}
	dropped int
	f       *os.File // nil: memory-only (no journal dir)
	cap     int
}

// recoveredTraceCtx restores a job's span context from the journalled
// traceparent string; pre-trace journals (or a corrupt header field) get a
// fresh trace ID so the recovered job still has a coherent timeline.
func recoveredTraceCtx(traceparent string) obs.SpanContext {
	if sc, ok := obs.ParseTraceparent(traceparent); ok {
		return sc
	}
	return obs.SpanContext{Trace: obs.NewTraceID()}
}

// tracePath maps a job ID into the traces subdirectory ("" when journalling
// is off or the ID is path-hostile, mirroring journal.path).
func tracePath(journalDir, id string) string {
	if journalDir == "" || id == "" || len(id) > 64 || containsPathHostile(id) {
		return ""
	}
	return filepath.Join(journalDir, traceSubdir, id+".jsonl")
}

func containsPathHostile(id string) bool {
	for _, r := range id {
		if r == '/' || r == '\\' || r == '.' {
			return true
		}
	}
	return false
}

// newJobTrace opens a fresh trace for a job. path == "" keeps it memory-only.
func newJobTrace(traceID, path string) *jobTrace {
	t := &jobTrace{trace: traceID, seen: make(map[string]struct{}), cap: defaultTraceCap}
	if path != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err == nil {
			if f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err == nil {
				t.f = f
			}
		}
		if t.f == nil {
			serveMetrics.Get().journalErrors.Inc()
		}
	}
	return t
}

// reopenJobTrace restores a recovered job's timeline from its trace file and
// reopens it for appending, so a restarted coordinator keeps extending the
// same trace. Corrupt lines (the torn-final-line crash artifact) are skipped.
func reopenJobTrace(traceID, path string) *jobTrace {
	t := newJobTrace(traceID, path)
	if path == "" {
		return t
	}
	f, err := os.Open(path)
	if err != nil {
		return t
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue
		}
		t.restore(ev)
	}
	return t
}

// dedupKey identifies an event across re-ingests. Span 0 (marker events)
// falls back to the start timestamp so distinct markers are not collapsed.
func dedupKey(ev obs.Event) string {
	if ev.Span != 0 {
		return ev.Proc + "|" + strconv.FormatUint(ev.Span, 16)
	}
	return ev.Proc + "|" + ev.Name + "@" + strconv.FormatInt(ev.StartNS, 10)
}

// Emit implements obs.Emitter for locally produced spans: stamp this
// process's identity and the job's trace ID, then record.
func (t *jobTrace) Emit(ev obs.Event) {
	if t == nil {
		return
	}
	if ev.Proc == "" {
		ev.Proc = procID
	}
	if ev.Trace == "" {
		ev.Trace = t.trace
	}
	t.record(ev, true)
}

// ingest folds a batch of events into the timeline, preserving Proc/Trace
// stamps where present. Events without a Proc (coordinator-side flight dumps
// and markers) were produced in this process and are stamped accordingly, so
// their dedup keys match any live-emitted copies of the same spans.
func (t *jobTrace) ingest(evs []obs.Event) {
	if t == nil {
		return
	}
	m := serveMetrics.Get()
	for _, ev := range evs {
		if ev.Proc == "" {
			ev.Proc = procID
		}
		if ev.Trace == "" {
			ev.Trace = t.trace
		}
		if t.record(ev, false) {
			m.traceIngested.Inc()
		}
	}
}

// restore re-adds an event read back from the trace file: dedup and buffer
// only, never re-written to disk.
func (t *jobTrace) restore(ev obs.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := dedupKey(ev)
	if _, dup := t.seen[key]; dup || len(t.evs) >= t.cap {
		return
	}
	t.seen[key] = struct{}{}
	t.evs = append(t.evs, ev)
}

// record dedups, buffers, counts, and appends to the trace file. Returns
// whether the event was kept.
func (t *jobTrace) record(ev obs.Event, local bool) bool {
	m := serveMetrics.Get()
	t.mu.Lock()
	key := dedupKey(ev)
	if _, dup := t.seen[key]; dup {
		t.mu.Unlock()
		return false
	}
	if len(t.evs) >= t.cap {
		t.dropped++
		t.mu.Unlock()
		m.traceDropped.Inc()
		return false
	}
	t.seen[key] = struct{}{}
	t.evs = append(t.evs, ev)
	var f *os.File
	if t.f != nil {
		f = t.f
	}
	var line []byte
	if f != nil {
		line, _ = json.Marshal(ev)
	}
	t.mu.Unlock()
	if local {
		m.traceSpans.Inc()
	}
	if f != nil && line != nil {
		// One unbuffered write per event: torn tails are tolerated on reload,
		// and an fsync per span would tax the sweep path for little — the
		// buffer is the primary copy while the process lives.
		if _, err := f.Write(append(line, '\n')); err != nil {
			m.journalErrors.Inc()
		}
	}
	return true
}

// snapshot copies the timeline (and the drop count) for the API.
func (t *jobTrace) snapshot() ([]obs.Event, int) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]obs.Event(nil), t.evs...), t.dropped
}

// close releases the file handle (the buffer stays queryable).
func (t *jobTrace) close() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.f != nil {
		_ = t.f.Close()
		t.f = nil
	}
	t.mu.Unlock()
}

// discard closes the handle and deletes the trace file — eviction-time
// cleanup, paired with journal.remove.
func (t *jobTrace) discard(path string) {
	t.close()
	if path != "" {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			serveMetrics.Get().journalErrors.Inc()
		}
	}
}

// renderTrace builds the API view: the raw timeline plus per-stage and
// per-process latency rollups (markers — flight dumps, resume records — are
// listed but not aggregated).
func renderTrace(jobID string, trace string, evs []obs.Event, dropped int) JobTrace {
	jt := JobTrace{JobID: jobID, TraceID: trace, Spans: evs, Dropped: dropped}
	stageIdx := map[string]int{}
	procIdx := map[string]int{}
	for _, ev := range evs {
		if ev.Type != "span" {
			continue
		}
		ms := float64(ev.DurNS) / 1e6
		si, ok := stageIdx[ev.Name]
		if !ok {
			si = len(jt.Stages)
			stageIdx[ev.Name] = si
			jt.Stages = append(jt.Stages, TraceStage{Name: ev.Name})
		}
		st := &jt.Stages[si]
		st.Count++
		st.TotalMS += ms
		if ms > st.MaxMS {
			st.MaxMS = ms
		}
		pi, ok := procIdx[ev.Proc]
		if !ok {
			pi = len(jt.Procs)
			procIdx[ev.Proc] = pi
			jt.Procs = append(jt.Procs, TraceProc{Proc: ev.Proc})
		}
		jt.Procs[pi].Spans++
		jt.Procs[pi].TotalMS += ms
	}
	return jt
}
