package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// postJSONAs is postJSON with a tenant header.
func postJSONAs(t *testing.T, url, tenant string, v any) (*http.Response, JobStatus) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp, st
}

// fakeClock injects a deterministic clock into the admission table.
type fakeClock struct {
	mu  sync.Mutex
	cur time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.cur = c.cur.Add(d)
	c.mu.Unlock()
}

// TestTenantRateQuota drives the token bucket over its boundaries with an
// injected clock: the burst is honoured exactly, the 429 carries the
// bucket-deficit Retry-After, sleeping that long re-admits, and another
// tenant's bucket is untouched throughout.
func TestTenantRateQuota(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	s := New(Config{
		Workers:        2,
		TenantDefaults: TenantConfig{SubmitRate: 1, SubmitBurst: 2},
	})
	defer s.Shutdown(context.Background())
	clk := &fakeClock{cur: time.Unix(1_700_000_000, 0)}
	s.tenants.now = clk.now
	ts := httptest.NewServer(s)
	defer ts.Close()

	submit := func(tenant, name string) (*http.Response, JobStatus) {
		return postJSONAs(t, ts.URL+"/v1/characterise", tenant, CharacteriseRequest{PointSpec: hopfSpec(name, 7e3)})
	}

	// Burst of 2 lands back-to-back; the third is over rate.
	var ids []string
	for i := 0; i < 2; i++ {
		resp, st := submit("alpha", fmt.Sprintf("rate%d", i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst submit %d: %d, want 202", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	resp, _ := submit("alpha", "rate2")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\" (whole empty bucket at 1/s)", ra)
	}

	// Another tenant is not collateral damage.
	if resp, st := submit("beta", "rate0"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant during alpha's 429s: %d, want 202", resp.StatusCode)
	} else {
		ids = append(ids, st.ID)
	}

	// Sleeping the advertised Retry-After is sufficient.
	clk.advance(time.Second)
	resp, st := submit("alpha", "rate3")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after Retry-After elapsed: %d, want 202", resp.StatusCode)
	}
	ids = append(ids, st.ID)

	// Refill never overshoots the burst: a long idle stretch buys exactly
	// SubmitBurst submissions, not one per idle second.
	clk.advance(time.Hour)
	for i := 0; i < 2; i++ {
		resp, st := submit("alpha", fmt.Sprintf("rate%d", 4+i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("post-idle submit %d: %d, want 202", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	if resp, _ := submit("alpha", "rate6"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst overshoot after idle: %d, want 429 (bucket must cap at burst)", resp.StatusCode)
	}

	snap := reg.Snapshot()
	if got := snap.Counter("pn_serve_rejected_total", "tenant_rate"); got != 2 {
		t.Fatalf("rejected{tenant_rate} = %d, want 2", got)
	}
	if got := snap.Counter("pn_serve_tenant_rejected_total", "alpha"); got != 2 {
		t.Fatalf("tenant_rejected{alpha} = %d, want 2", got)
	}
	if got := snap.Counter("pn_serve_tenant_rejected_total", "beta"); got != 0 {
		t.Fatalf("tenant_rejected{beta} = %d, want 0", got)
	}
	for _, id := range ids {
		waitState(t, ts.URL, id, terminal)
	}
}

// TestTenantInFlightCap: a tenant at its in-flight ceiling gets 429s until one
// of its jobs settles, and an invalid tenant name never reaches admission.
func TestTenantInFlightCap(t *testing.T) {
	s := New(Config{
		Workers: 1,
		Tenants: map[string]TenantConfig{"capped": {MaxInFlight: 1}},
	})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, st := postJSONAs(t, ts.URL+"/v1/sweep", "capped", slowSweep(4))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	resp, _ = postJSONAs(t, ts.URL+"/v1/sweep", "capped", slowSweep(1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over in-flight cap: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("in-flight 429 without Retry-After")
	}

	// The cap is per tenant, not global.
	if resp, st2 := postJSONAs(t, ts.URL+"/v1/characterise", "roomy", CharacteriseRequest{PointSpec: hopfSpec("cap0", 8e3)}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("uncapped tenant: %d, want 202", resp.StatusCode)
	} else {
		defer waitState(t, ts.URL, st2.ID, terminal)
	}

	if waitState(t, ts.URL, st.ID, terminal).State != StateDone {
		t.Fatal("capped tenant's job failed")
	}
	resp, st3 := postJSONAs(t, ts.URL+"/v1/sweep", "capped", slowSweep(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after slot freed: %d, want 202", resp.StatusCode)
	}
	waitState(t, ts.URL, st3.ID, terminal)

	// A hostile tenant name is a 400, before any quota state is minted.
	resp, _ = postJSONAs(t, ts.URL+"/v1/characterise", "../escape", CharacteriseRequest{PointSpec: hopfSpec("cap1", 8e3)})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("hostile tenant name: %d, want 400", resp.StatusCode)
	}
}

// TestTenantFairness is the starvation test the scheduler exists for: with a
// single worker already deep in tenant A's batch sweep, tenant B's interactive
// characterise must be granted at the next lane boundary and finish while A's
// sweep is still running — bounded wait, not FIFO-behind-the-backlog.
func TestTenantFairness(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	s := New(Config{Workers: 1, LaneGrant: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Tenant A floods the single worker with a slow batch sweep.
	respA, batch := postJSONAs(t, ts.URL+"/v1/sweep", "batch-tenant", slowSweep(30))
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit: %d", respA.StatusCode)
	}
	waitState(t, ts.URL, batch.ID, func(s JobStatus) bool { return s.State == StateRunning })

	// Tenant B asks one interactive question.
	respB, live := postJSONAs(t, ts.URL+"/v1/characterise", "live-tenant", CharacteriseRequest{PointSpec: hopfSpec("urgent", 9e3)})
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("interactive submit: %d", respB.StatusCode)
	}
	liveDone := waitState(t, ts.URL, live.ID, terminal)
	if liveDone.State != StateDone {
		t.Fatalf("interactive job: %+v", liveDone)
	}

	// The moment B's answer arrived, A's sweep must still be in flight: B did
	// not wait out the batch backlog.
	batchNow := getStatus(t, ts.URL, batch.ID, false)
	if terminal(batchNow) {
		t.Fatalf("batch sweep already %q when the interactive job finished — no preemption happened", batchNow.State)
	}
	if batchNow.DonePoints >= 30 {
		t.Fatalf("batch at %d/30 points — interactive job waited out the whole sweep", batchNow.DonePoints)
	}

	// Both tenants took grants; the batch tenant took many (one per chunk).
	snap := reg.Snapshot()
	if got := snap.Counter("pn_serve_tenant_grants_total", "live-tenant"); got != 1 {
		t.Fatalf("grants{live-tenant} = %d, want 1", got)
	}
	if got := snap.Counter("pn_serve_tenant_grants_total", "batch-tenant"); got < 2 {
		t.Fatalf("grants{batch-tenant} = %d, want >= 2 (chunked execution)", got)
	}

	// And the preempted sweep still finishes intact.
	batchDone := waitState(t, ts.URL, batch.ID, terminal)
	if batchDone.State != StateDone || batchDone.DonePoints != 30 {
		t.Fatalf("batch sweep after preemption: %+v", batchDone)
	}
}

// TestSchedLanesAndWeights unit-tests the scheduler's grant order: strict
// interactive-lane priority, weighted interleave within a lane with the
// deterministic name tie-break, the intake bound, and requeue/close
// semantics.
func TestSchedLanesAndWeights(t *testing.T) {
	mk := func(kind, tenant string) *job {
		return &job{id: kind + "-" + tenant, kind: kind, tenant: tenant}
	}

	// Lane priority: a batch backlog never delays an interactive grant.
	s := newSched(0)
	a1, a2 := mk("sweep", "a"), mk("sweep", "a")
	b1 := mk("characterise", "b")
	for _, j := range []*job{a1, a2} {
		if err := s.submit(j, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.submit(b1, 1); err != nil {
		t.Fatal(err)
	}
	if got := s.next(); got != b1 {
		t.Fatalf("first grant %v, want the interactive job", got.id)
	}
	if got := s.next(); got != a1 {
		t.Fatalf("second grant %v, want the first batch job", got.id)
	}
	// A started job re-enters its lane without counting against intake.
	if s.depth() != 1 {
		t.Fatalf("depth = %d, want 1 (only the ungranted job)", s.depth())
	}
	s.requeue(a1)
	if s.depth() != 1 {
		t.Fatalf("depth after requeue = %d, want 1 (granted jobs are not intake)", s.depth())
	}
	if got := s.next(); got != a2 {
		t.Fatalf("third grant %v, want a2 (FIFO within tenant)", got.id)
	}
	if got := s.next(); got != a1 {
		t.Fatalf("fourth grant %v, want the requeued a1", got.id)
	}

	// Weighted interleave: weight 2 takes two grants per weight-1 grant, with
	// equal virtual times broken by tenant name.
	s = newSched(0)
	var w, v []*job
	for i := 0; i < 4; i++ {
		w = append(w, mk("sweep", "w"))
		v = append(v, mk("sweep", "v"))
	}
	for _, j := range w {
		if err := s.submit(j, 2); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range v {
		if err := s.submit(j, 1); err != nil {
			t.Fatal(err)
		}
	}
	want := []*job{v[0], w[0], w[1], v[1], w[2], w[3], v[2], v[3]}
	for i, wj := range want {
		if got := s.next(); got != wj {
			t.Fatalf("grant %d went to %s, want %s", i, got.tenant, wj.tenant)
		}
	}

	// Intake bound and closure.
	s = newSched(2)
	if err := s.submit(mk("sweep", "x"), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.submit(mk("sweep", "x"), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.submit(mk("sweep", "x"), 1); err != errSchedFull {
		t.Fatalf("submit over bound: %v, want errSchedFull", err)
	}
	// Recovered jobs bypass the bound but not closure.
	if err := s.resume(mk("sweep", "y"), 1); err != nil {
		t.Fatalf("resume over bound: %v, want nil", err)
	}
	s.close()
	if err := s.submit(mk("sweep", "x"), 1); err != errSchedClosed {
		t.Fatalf("submit after close: %v, want errSchedClosed", err)
	}
	if err := s.resume(mk("sweep", "y"), 1); err != errSchedClosed {
		t.Fatalf("resume after close: %v, want errSchedClosed", err)
	}
	for i := 0; i < 3; i++ {
		if s.next() == nil {
			t.Fatalf("drain grant %d: scheduler gave up before empty", i)
		}
	}
	if got := s.next(); got != nil {
		t.Fatalf("next on closed+empty = %v, want nil", got.id)
	}
}
