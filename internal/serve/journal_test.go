package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// writeJournalFile hand-crafts one journal file, line by line, simulating
// on-disk state left behind by a crashed server. extra lines are appended
// verbatim (for torn/garbage tails).
func writeJournalFile(t *testing.T, dir, name string, recs []jrecord, extra ...string) {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range recs {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	for _, l := range extra {
		buf.WriteString(l)
	}
	if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// waitReady polls /readyz until it answers 200.
func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

// readSSEFrom is readSSE with a Last-Event-ID header: resume the stream after
// sequence number `after`.
func readSSEFrom(t *testing.T, base, id string, after int64) []Event {
	t.Helper()
	req, err := http.NewRequest("GET", base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if after > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(after, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	var out []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			out = append(out, ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// postJSONKey is postJSON with an Idempotency-Key header.
func postJSONKey(t *testing.T, url, key string, v any) (*http.Response, JobStatus) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp, st
}

// TestJournalRecoveryTerminal restores a finished job from its rotated
// journal: status (state, counters, summaries) and the replayable SSE stream
// come back exactly as they were, and the ID space continues past it.
func TestJournalRecoveryTerminal(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	dir := t.TempDir()
	sum0 := PointSummary{Index: 0, Name: "p0", OK: true, T: 1.25, F0: 0.8, C: 3e-9}
	sum1 := PointSummary{Index: 1, Name: "p1", OK: true, Cached: true, T: 1.5, F0: 0.66, C: 4e-9}
	writeJournalFile(t, dir, "j7"+doneExt, []jrecord{
		{V: 1, T: "accepted", ID: "j7", Kind: "sweep", Specs: []PointSpec{hopfSpec("p0", 3), hopfSpec("p1", 4)}, Workers: 1},
		{V: 1, T: "event", Ev: &Event{Seq: 1, Type: "state", State: StateQueued}},
		{V: 1, T: "event", Ev: &Event{Seq: 2, Type: "state", State: StateRunning}},
		{V: 1, T: "event", Ev: &Event{Seq: 3, Type: "point", Point: &sum0}},
		{V: 1, T: "event", Ev: &Event{Seq: 4, Type: "point", Point: &sum1}},
		{V: 1, T: "event", Ev: &Event{Seq: 5, Type: "state", State: StateDone}},
	})

	s := New(Config{Workers: 1, JournalDir: dir})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()
	waitReady(t, ts.URL)

	st := getStatus(t, ts.URL, "j7", false)
	if st.State != StateDone || st.Points != 2 || st.DonePoints != 2 || st.CachedPoints != 1 || st.FailedPoints != 0 {
		t.Fatalf("recovered status: %+v", st)
	}
	if len(st.Results) != 2 || st.Results[0].C != 3e-9 || !st.Results[1].Cached {
		t.Fatalf("recovered summaries: %+v", st.Results)
	}

	// The event stream replays in full and closes (the job is terminal).
	evs := readSSE(t, ts.URL, "j7")
	if len(evs) != 5 || evs[0].Seq != 1 || evs[4].State != StateDone {
		t.Fatalf("recovered events: %+v", evs)
	}

	// New submissions continue the ID space past the recovered job.
	_, next := postJSON(t, ts.URL+"/v1/characterise", CharacteriseRequest{PointSpec: hopfSpec("next", 5)})
	if next.ID != "j8" {
		t.Fatalf("next job ID %q, want j8 (after recovered j7)", next.ID)
	}
	waitState(t, ts.URL, next.ID, terminal)

	if got := reg.Snapshot().Counter("pn_serve_jobs_recovered_total", "terminal"); got != 1 {
		t.Fatalf("recovered{terminal} = %d, want 1", got)
	}
}

// TestJournalRecoveryResume is the headline crash-recovery path in-process: a
// .wal left by a "crashed" server (header, partial progress, torn tail) is
// re-enqueued on startup and runs to completion with every pre-crash point
// served from the result cache — the pipeline is never re-invoked — while the
// SSE stream stays resumable across the restart via Last-Event-ID.
func TestJournalRecoveryResume(t *testing.T) {
	specs := []PointSpec{hopfSpec("p0", 3), hopfSpec("p1", 4), hopfSpec("p2", 5)}
	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: compute all three points into the shared store ("before the
	// crash"); this server has no journal.
	warm := New(Config{Workers: 2, Cache: store})
	tsw := httptest.NewServer(warm)
	_, wst := postJSON(t, tsw.URL+"/v1/sweep", SweepRequest{Points: specs})
	waitState(t, tsw.URL, wst.ID, terminal)
	tsw.Close()
	warm.Shutdown(context.Background())

	// Phase 2: the crash artifact — a .wal with partial progress and a torn
	// final line, as a kill mid-write leaves behind.
	dir := t.TempDir()
	sum0 := PointSummary{Index: 0, Name: "p0", OK: true, T: 1, F0: 1, C: 1e-9}
	writeJournalFile(t, dir, "j3"+walExt, []jrecord{
		{V: 1, T: "accepted", ID: "j3", Kind: "sweep", Specs: specs, Workers: 1},
		{V: 1, T: "event", Ev: &Event{Seq: 1, Type: "state", State: StateQueued}},
		{V: 1, T: "event", Ev: &Event{Seq: 2, Type: "state", State: StateRunning}},
		{V: 1, T: "event", Ev: &Event{Seq: 3, Type: "point", Point: &sum0}},
	}, `{"v":1,"t":"event","ev":{"seq":4,"ty`) // torn mid-record

	// Phase 3: restart over the same journal + cache. Count pipeline work
	// from here only.
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	s := New(Config{Workers: 1, Cache: store, JournalDir: dir})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()
	waitReady(t, ts.URL)

	st := waitState(t, ts.URL, "j3", terminal)
	if st.State != StateDone || st.DonePoints != 3 || st.FailedPoints != 0 {
		t.Fatalf("resumed job status: %+v", st)
	}
	if st.CachedPoints != 3 {
		t.Fatalf("resumed job recomputed: %d cached points, want 3", st.CachedPoints)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("pn_core_characterisations_total", "ok"); got != 0 {
		t.Fatalf("resume re-ran the pipeline %d times, want 0", got)
	}
	if got := snap.Counter("pn_serve_jobs_recovered_total", "resumed"); got != 1 {
		t.Fatalf("recovered{resumed} = %d, want 1", got)
	}
	if got := snap.Counter("pn_serve_journal_corrupt_records_total", ""); got < 1 {
		t.Fatalf("torn line not counted: corrupt records = %d", got)
	}

	// A client that saw events 1..2 before the crash reconnects with
	// Last-Event-ID: 2 and gets the restored point event (seq 3), the fresh
	// queued/running transitions, every point re-reported as a cache hit, and
	// the terminal state — one contiguous sequence across the restart.
	evs := readSSEFrom(t, ts.URL, "j3", 2)
	if len(evs) == 0 || evs[0].Seq != 3 {
		t.Fatalf("replay after seq 2 starts at %+v", evs)
	}
	for i, ev := range evs {
		if ev.Seq != int64(3+i) {
			t.Fatalf("gap in replayed sequence at %d: %+v", i, ev)
		}
	}
	last := evs[len(evs)-1]
	if last.Type != "state" || last.State != StateDone {
		t.Fatalf("stream did not end terminal: %+v", last)
	}
	var resumedQueued, points int
	for _, ev := range evs[1:] { // after the restored history
		switch ev.Type {
		case "state":
			if ev.State == StateQueued {
				resumedQueued++
			}
		case "point":
			if !ev.Point.Cached {
				t.Fatalf("re-reported point not cached: %+v", ev.Point)
			}
			points++
		}
	}
	if resumedQueued != 1 || points != 3 {
		t.Fatalf("resumption events: %d queued, %d points (want 1, 3)", resumedQueued, points)
	}

	// The finished journal rotated to its terminal name.
	if _, err := os.Stat(filepath.Join(dir, "j3"+doneExt)); err != nil {
		t.Fatalf("journal not rotated after resume: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "j3"+walExt)); !os.IsNotExist(err) {
		t.Fatal("stale .wal left after rotation")
	}
}

// TestJournalIdempotency covers the Idempotency-Key contract: duplicate
// submissions return the existing job (200, not a new 202), a reused key with
// a different body is rejected, and the mapping survives a restart through
// the journal header.
func TestJournalIdempotency(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	dir := t.TempDir()
	s := New(Config{Workers: 1, JournalDir: dir})
	ts := httptest.NewServer(s)
	waitReady(t, ts.URL)

	req := CharacteriseRequest{PointSpec: hopfSpec("idem", 3)}
	resp1, st1 := postJSONKey(t, ts.URL+"/v1/characterise", "key-1", req)
	if resp1.StatusCode != http.StatusAccepted || st1.ID == "" {
		t.Fatalf("first submit: %d %+v", resp1.StatusCode, st1)
	}

	// Same key, same body: replay, whatever state the job is in.
	resp2, st2 := postJSONKey(t, ts.URL+"/v1/characterise", "key-1", req)
	if resp2.StatusCode != http.StatusOK || st2.ID != st1.ID {
		t.Fatalf("duplicate submit: %d %+v (want 200, id %s)", resp2.StatusCode, st2, st1.ID)
	}
	if resp2.Header.Get("Idempotent-Replay") != "true" {
		t.Fatal("duplicate submit missing Idempotent-Replay header")
	}

	// Same key, different body: client bug, rejected.
	resp3, _ := postJSONKey(t, ts.URL+"/v1/characterise", "key-1", CharacteriseRequest{PointSpec: hopfSpec("other", 4)})
	if resp3.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched body: %d, want 409", resp3.StatusCode)
	}

	waitState(t, ts.URL, st1.ID, terminal)
	ts.Close()
	s.Shutdown(context.Background())

	// Restart: the key still maps to the (now recovered, terminal) job.
	s2 := New(Config{Workers: 1, JournalDir: dir})
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	waitReady(t, ts2.URL)

	resp4, st4 := postJSONKey(t, ts2.URL+"/v1/characterise", "key-1", req)
	if resp4.StatusCode != http.StatusOK || st4.ID != st1.ID {
		t.Fatalf("post-restart duplicate: %d id=%q (want 200, id %s)", resp4.StatusCode, st4.ID, st1.ID)
	}
	if st4.State != StateDone {
		t.Fatalf("post-restart replay state %q, want done", st4.State)
	}
	resp5, _ := postJSONKey(t, ts2.URL+"/v1/characterise", "key-1", CharacteriseRequest{PointSpec: hopfSpec("other", 4)})
	if resp5.StatusCode != http.StatusConflict {
		t.Fatalf("post-restart mismatched body: %d, want 409", resp5.StatusCode)
	}

	if got := reg.Snapshot().Counter("pn_serve_idempotent_replays_total", ""); got != 2 {
		t.Fatalf("idempotent replays = %d, want 2", got)
	}
	if got := reg.Snapshot().Counter("pn_serve_rejected_total", "idem_mismatch"); got != 2 {
		t.Fatalf("idem_mismatch rejections = %d, want 2", got)
	}
}

// TestJournalCorruptQuarantine: a journal file with an unreadable header must
// not wedge startup — it is moved aside as .corrupt, counted, and the server
// comes up ready and empty.
func TestJournalCorruptQuarantine(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "j5"+walExt), []byte("not json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 1, JournalDir: dir})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()
	waitReady(t, ts.URL)

	resp, err := http.Get(ts.URL + "/v1/jobs/j5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("corrupt job resurrected: %d", resp.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dir, "j5"+walExt+".corrupt")); err != nil {
		t.Fatalf("corrupt file not quarantined: %v", err)
	}
	if got := reg.Snapshot().Counter("pn_serve_journal_corrupt_records_total", ""); got < 1 {
		t.Fatalf("corruption not counted: %d", got)
	}
	// The quarantined name must not be picked up again on the next start.
	s2 := New(Config{Workers: 1, JournalDir: dir})
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	waitReady(t, ts2.URL)
}

// TestReadyzLifecycle: /readyz is 503 while the journal replays (the window
// widened deterministically by the replay-delay fault point) and while
// draining; /healthz answers 200 throughout.
func TestReadyzLifecycle(t *testing.T) {
	dir := t.TempDir()
	writeJournalFile(t, dir, "j1"+doneExt, []jrecord{
		{V: 1, T: "accepted", ID: "j1", Kind: "characterise", Specs: []PointSpec{hopfSpec("old", 3)}, Workers: 1},
		{V: 1, T: "event", Ev: &Event{Seq: 1, Type: "state", State: StateQueued}},
		{V: 1, T: "event", Ev: &Event{Seq: 2, Type: "state", State: StateDone}},
	})
	defer faultinject.Enable(faultinject.Plan{
		faultinject.ServeReplayDelay: {Mode: faultinject.ModeDelay, Delay: 300 * time.Millisecond},
	})()

	s := New(Config{Workers: 1, JournalDir: dir})
	ts := httptest.NewServer(s)
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during replay: %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz during replay: %d, want 200", code)
	}
	waitReady(t, ts.URL)

	s.Shutdown(context.Background())
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while drained: %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while drained: %d, want 200", code)
	}
}

// TestChaosJournalWriteFault: with every journal write failing, submissions
// still succeed and jobs still complete — durability degrades (counted), the
// service does not.
func TestChaosJournalWriteFault(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	defer faultinject.Enable(faultinject.Plan{
		faultinject.ServeJournalWrite: {Mode: faultinject.ModeError},
	})()

	dir := t.TempDir()
	s := New(Config{Workers: 1, JournalDir: dir})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()
	waitReady(t, ts.URL)

	resp, st := postJSON(t, ts.URL+"/v1/characterise", CharacteriseRequest{PointSpec: hopfSpec("nojournal", 3)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit under journal fault: %d", resp.StatusCode)
	}
	done := waitState(t, ts.URL, st.ID, terminal)
	if done.State != StateDone {
		t.Fatalf("job under journal fault: %+v", done)
	}
	if got := reg.Snapshot().Counter("pn_serve_journal_write_errors_total", ""); got < 1 {
		t.Fatalf("journal write errors = %d, want >= 1", got)
	}
	// Nothing durable was promised: no job journal (.wal/.jsonl) survived to
	// resurrect the job. The traces/ subdirectory may exist — trace files are
	// observability artifacts, not durability promises, and replay never
	// reads them as job journals.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".wal") || strings.HasSuffix(e.Name(), ".jsonl") {
			t.Fatalf("job journal survived under write faults: %v", e.Name())
		}
	}
}

// TestChaosHandlerFault: the handler fault point turns every request into a
// 500 while enabled and disappears with the plan.
func TestChaosHandlerFault(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	disable := faultinject.Enable(faultinject.Plan{
		faultinject.ServeHandlerLatency: {Mode: faultinject.ModeError},
	})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted handler: %d, want 500", resp.StatusCode)
	}
	disable()

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("handler after disable: %d, want 200", resp.StatusCode)
	}
}
