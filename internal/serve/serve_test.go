package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/obs"
)

// postJSON posts v and decodes the JobStatus (or error body) response.
func postJSON(t *testing.T, url string, v any) (*http.Response, JobStatus) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp, st
}

func getStatus(t *testing.T, base, id string, full bool) JobStatus {
	t.Helper()
	url := base + "/v1/jobs/" + id
	if full {
		url += "?full=1"
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls the job until pred holds or the deadline passes.
func waitState(t *testing.T, base, id string, pred func(JobStatus) bool) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, base, id, false)
		if pred(st) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the expected state", id)
	return JobStatus{}
}

func terminal(st JobStatus) bool {
	return st.State == StateDone || st.State == StateFailed || st.State == StateCanceled
}

// readSSE consumes the job's event stream until the server closes it (the job
// went terminal) and returns the decoded events.
func readSSE(t *testing.T, base, id string) []Event {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: content type %q", ct)
	}
	var out []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			out = append(out, ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// hopfSpec is a fast, closed-form-period point; distinct omegas give distinct
// cache keys.
func hopfSpec(name string, omega float64) PointSpec {
	return PointSpec{Name: name, Model: "hopf", Params: map[string]float64{"lambda": 1, "omega": omega, "sigma": 0.02}}
}

// TestServeEndToEnd is the acceptance path: submit a job over HTTP, watch its
// SSE stream, fetch the result, resubmit the identical job and observe a
// cache hit that never invokes core.Characterise.
func TestServeEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 2, Cache: store})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, st := postJSON(t, ts.URL+"/v1/characterise", CharacteriseRequest{PointSpec: hopfSpec("e2e", 3)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if st.ID == "" || st.State != StateQueued || st.Kind != "characterise" || st.Points != 1 {
		t.Fatalf("submit status: %+v", st)
	}

	// The SSE stream replays history and closes at the terminal state.
	events := readSSE(t, ts.URL, st.ID)
	var states []string
	pointEvents := 0
	for _, ev := range events {
		switch ev.Type {
		case "state":
			states = append(states, ev.State)
		case "point":
			pointEvents++
			if ev.Point == nil || ev.Point.Index != 0 || !ev.Point.OK || ev.Point.Cached {
				t.Fatalf("point event: %+v", ev.Point)
			}
		}
	}
	if want := []string{StateQueued, StateRunning, StateDone}; fmt.Sprint(states) != fmt.Sprint(want) {
		t.Fatalf("state events %v, want %v", states, want)
	}
	if pointEvents != 1 {
		t.Fatalf("%d point events, want 1", pointEvents)
	}

	done := getStatus(t, ts.URL, st.ID, false)
	if done.State != StateDone || done.DonePoints != 1 || done.CachedPoints != 0 || done.FailedPoints != 0 {
		t.Fatalf("done status: %+v", done)
	}
	if len(done.Results) != 1 || !done.Results[0].OK || done.Results[0].C <= 0 {
		t.Fatalf("done results: %+v", done.Results)
	}
	chars := reg.Snapshot().Counter("pn_core_characterisations_total", "ok")
	if chars != 1 {
		t.Fatalf("characterisations after first job = %d, want 1", chars)
	}

	// Identical resubmit: served from the cache, pipeline never invoked.
	resp2, st2 := postJSON(t, ts.URL+"/v1/characterise", CharacteriseRequest{PointSpec: hopfSpec("e2e", 3)})
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", resp2.StatusCode)
	}
	cachedDone := waitState(t, ts.URL, st2.ID, terminal)
	if cachedDone.State != StateDone || cachedDone.CachedPoints != 1 {
		t.Fatalf("cached rerun status: %+v", cachedDone)
	}
	if len(cachedDone.Results) != 1 || !cachedDone.Results[0].Cached || !cachedDone.Results[0].OK {
		t.Fatalf("cached rerun results: %+v", cachedDone.Results)
	}
	if got := reg.Snapshot().Counter("pn_core_characterisations_total", "ok"); got != chars {
		t.Fatalf("cached rerun invoked the pipeline: %d characterisations, want %d", got, chars)
	}
	if cachedDone.Results[0].C != done.Results[0].C {
		t.Fatalf("cached c=%g differs from computed c=%g", cachedDone.Results[0].C, done.Results[0].C)
	}

	// The full payload round-trips through the loss-free codec.
	fullSt := getStatus(t, ts.URL, st2.ID, true)
	if len(fullSt.Full) != 1 {
		t.Fatalf("full payload: %d results", len(fullSt.Full))
	}
	fr := fullSt.Full[0]
	if !fr.OK() || !fr.Cached || fr.Result.C != done.Results[0].C {
		t.Fatalf("full result: ok=%v cached=%v", fr.OK(), fr.Cached)
	}
	if fr.PSS == nil || fr.PSS != fr.Result.PSS {
		t.Fatal("full result lost the PSS aliasing")
	}

	// Serve-layer metrics moved.
	snap := reg.Snapshot()
	if got := snap.Counter("pn_serve_jobs_total", "done"); got != 2 {
		t.Fatalf("pn_serve_jobs_total{done} = %d, want 2", got)
	}
	if got := snap.Counter("pn_serve_submitted_total", "characterise"); got != 2 {
		t.Fatalf("pn_serve_submitted_total{characterise} = %d, want 2", got)
	}
	if d := snap.Gauge("pn_serve_queue_depth"); d != 0 {
		t.Fatalf("queue depth = %g, want 0", d)
	}
	if d := snap.Gauge("pn_serve_jobs_inflight"); d != 0 {
		t.Fatalf("inflight = %g, want 0", d)
	}
}

// TestServeSweepJob runs a multi-point job with a pre-warmed cache and checks
// exact per-point indices and the cached/computed split.
func TestServeSweepJob(t *testing.T) {
	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Cache: store})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Warm one of the three points.
	_, warm := postJSON(t, ts.URL+"/v1/characterise", CharacteriseRequest{PointSpec: hopfSpec("warm", 4)})
	waitState(t, ts.URL, warm.ID, terminal)

	resp, st := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Points: []PointSpec{hopfSpec("p0", 3), hopfSpec("p1", 4), hopfSpec("p2", 5)},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	done := waitState(t, ts.URL, st.ID, terminal)
	if done.State != StateDone || done.DonePoints != 3 || done.CachedPoints != 1 || done.FailedPoints != 0 {
		t.Fatalf("sweep status: %+v", done)
	}
	if len(done.Results) != 3 {
		t.Fatalf("results: %+v", done.Results)
	}
	for i, r := range done.Results {
		if r.Index != i || r.Name != fmt.Sprintf("p%d", i) {
			t.Fatalf("result %d has index %d name %q", i, r.Index, r.Name)
		}
	}
	if done.Results[0].Cached || !done.Results[1].Cached || done.Results[2].Cached {
		t.Fatalf("cached split wrong: %+v", done.Results)
	}
}

// slowSweep builds a many-point single-worker sweep request: each ring point
// takes ~100ms, so the job stays in flight for seconds — a wide, reliable
// window for cancellation and queue-occupancy tests.
func slowSweep(n int) SweepRequest {
	pts := make([]PointSpec, n)
	for i := range pts {
		pts[i] = PointSpec{
			Name:   fmt.Sprintf("ring%d", i),
			Model:  "ring",
			Params: map[string]float64{"iee": 331e-6 * (1 + 0.001*float64(i))},
		}
	}
	return SweepRequest{Points: pts, Workers: 1, NoCache: true}
}

// TestServeCancelInflight cancels a running job and checks the terminal state
// wraps budget.ErrCanceled across the API boundary.
func TestServeCancelInflight(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, st := postJSON(t, ts.URL+"/v1/sweep", slowSweep(30))
	// Wait until the job is demonstrably mid-flight: running with at least
	// one point finished and more still to go.
	waitState(t, ts.URL, st.ID, func(s JobStatus) bool {
		return s.State == StateRunning && s.DonePoints >= 1
	})

	resp, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}

	canceled := waitState(t, ts.URL, st.ID, terminal)
	if canceled.State != StateCanceled {
		t.Fatalf("state %q, want canceled (%+v)", canceled.State, canceled)
	}
	if canceled.Error == nil {
		t.Fatal("canceled job carries no error")
	}
	if !errors.Is(canceled.Error, budget.ErrCanceled) {
		t.Fatalf("job error %v does not wrap budget.ErrCanceled", canceled.Error)
	}
	// Cut-off points report the cancellation with their budget identity
	// intact; completed points keep their results.
	full := getStatus(t, ts.URL, st.ID, true)
	var okN, canceledN int
	for _, r := range full.Full {
		switch {
		case r.OK():
			okN++
		case errors.Is(r.Err, budget.ErrCanceled):
			canceledN++
		}
	}
	if okN == 0 || canceledN == 0 {
		t.Fatalf("want both completed and canceled points, got ok=%d canceled=%d of %d", okN, canceledN, len(full.Full))
	}
}

// TestServeRejections exercises the back-pressure and validation paths:
// bad requests, queue overflow, body limits, draining.
func TestServeRejections(t *testing.T) {
	s := New(Config{Workers: 1, Queue: 1, MaxBodyBytes: 4096, MaxPoints: 50})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Unknown model and unknown parameter fail fast with 400.
	resp, _ := postJSON(t, ts.URL+"/v1/characterise", CharacteriseRequest{PointSpec: PointSpec{Model: "nosuch"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown model: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/characterise", CharacteriseRequest{PointSpec: PointSpec{Model: "hopf", Params: map[string]float64{"omgea": 3}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown param: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/sweep", SweepRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty sweep: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/sweep", slowSweep(51)) // over MaxPoints
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized sweep: %d", resp.StatusCode)
	}

	// Body limit → 413.
	big, err := http.Post(ts.URL+"/v1/characterise", "application/json",
		strings.NewReader(`{"model":"hopf","name":"`+strings.Repeat("x", 8192)+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	big.Body.Close()
	if big.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d", big.StatusCode)
	}

	// Queue overflow: a slow job occupies the single worker, the next fills
	// the queue of one, the third bounces with 429 + Retry-After.
	_, slow := postJSON(t, ts.URL+"/v1/sweep", slowSweep(30))
	waitState(t, ts.URL, slow.ID, func(s JobStatus) bool { return s.State == StateRunning })
	resp2, queued := postJSON(t, ts.URL+"/v1/characterise", CharacteriseRequest{PointSpec: PointSpec{Model: "fhn", Name: "q"}})
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp2.StatusCode)
	}
	resp3, _ := postJSON(t, ts.URL+"/v1/characterise", CharacteriseRequest{PointSpec: hopfSpec("bounce", 3)})
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Shutdown with an expired grace context cancels the in-flight and queued
	// jobs; submissions during/after draining get 503.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown: %v", err)
	}
	resp4, _ := postJSON(t, ts.URL+"/v1/characterise", CharacteriseRequest{PointSpec: hopfSpec("late", 3)})
	if resp4.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: %d", resp4.StatusCode)
	}
	for _, id := range []string{slow.ID, queued.ID} {
		st := getStatus(t, ts.URL, id, false)
		if st.State != StateCanceled {
			t.Fatalf("job %s after forced drain: %q, want canceled", id, st.State)
		}
		if !errors.Is(st.Error, budget.ErrCanceled) {
			t.Fatalf("job %s error %v does not wrap budget.ErrCanceled", id, st.Error)
		}
	}

	// Discoverability endpoints still answer.
	mresp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models []ModelInfo
	if err := json.NewDecoder(mresp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if len(models) == 0 {
		t.Fatal("no models listed")
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if !h.OK || !h.Draining {
		t.Fatalf("health after drain: %+v", h)
	}
}
