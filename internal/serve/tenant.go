package serve

import (
	"math"
	"sync"
	"time"
)

// Multi-tenant admission control: every submission carries a tenant identity
// (the X-PN-Tenant header; absent means DefaultTenant), and each tenant is
// admitted against its own token-bucket submit quota and in-flight cap before
// the job touches the journal or the queue. One tenant hammering the API gets
// its own 429s — with a Retry-After computed from its own bucket deficit —
// while every other tenant's requests sail through; downstream, the
// weighted-fair scheduler (sched.go) keeps the worker pool shared by weight
// rather than by arrival order. Rejection reasons are split out in
// pn_serve_rejected_total (tenant_rate, tenant_inflight) and per-tenant in
// pn_serve_tenant_rejected_total.

// TenantHeader is the HTTP header naming the submitting tenant.
const TenantHeader = "X-PN-Tenant"

// DefaultTenant is the identity of requests that carry no tenant header.
const DefaultTenant = "default"

// TenantConfig is one tenant's admission and scheduling policy. The zero
// value means unlimited submissions, unlimited in-flight jobs, weight 1.
type TenantConfig struct {
	// SubmitRate is the token-bucket refill rate in submissions per second;
	// 0 (or negative) disables rate limiting for the tenant.
	SubmitRate float64
	// SubmitBurst is the bucket capacity — how many submissions can land
	// back-to-back before the rate applies. Defaults to ceil(SubmitRate),
	// minimum 1, when rate limiting is on.
	SubmitBurst int
	// MaxInFlight caps the tenant's accepted-but-not-finished jobs (queued +
	// running); 0 means unlimited.
	MaxInFlight int
	// Weight is the tenant's share of the worker pool under contention
	// (see sched.go); <= 0 means 1.
	Weight float64
}

func (tc TenantConfig) withDefaults() TenantConfig {
	if tc.SubmitRate > 0 && tc.SubmitBurst <= 0 {
		tc.SubmitBurst = int(math.Ceil(tc.SubmitRate))
		if tc.SubmitBurst < 1 {
			tc.SubmitBurst = 1
		}
	}
	if tc.Weight <= 0 {
		tc.Weight = 1
	}
	return tc
}

// validTenant bounds tenant names to a path- and label-safe alphabet (the
// name becomes a metric label and could appear in file names).
func validTenant(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

// tenantState is one tenant's live admission state: a lazily refilled token
// bucket plus the in-flight job count.
type tenantState struct {
	cfg      TenantConfig
	tokens   float64
	last     time.Time
	inflight int
}

// tenants is the admission table. now is injectable for deterministic quota
// boundary tests.
type tenants struct {
	mu       sync.Mutex
	defaults TenantConfig
	perTen   map[string]TenantConfig
	state    map[string]*tenantState
	now      func() time.Time
}

func newTenants(defaults TenantConfig, per map[string]TenantConfig) *tenants {
	t := &tenants{
		defaults: defaults.withDefaults(),
		perTen:   make(map[string]TenantConfig, len(per)),
		state:    make(map[string]*tenantState),
		now:      time.Now,
	}
	for name, cfg := range per {
		t.perTen[name] = cfg.withDefaults()
	}
	return t
}

// get lazily materialises a tenant's state; callers hold t.mu.
func (t *tenants) get(name string) *tenantState {
	ts, ok := t.state[name]
	if !ok {
		cfg, ok := t.perTen[name]
		if !ok {
			cfg = t.defaults
		}
		ts = &tenantState{cfg: cfg, last: t.now()}
		if cfg.SubmitRate > 0 {
			ts.tokens = float64(cfg.SubmitBurst) // buckets start full
		}
		t.state[name] = ts
	}
	return ts
}

// weight reports the tenant's fair-share weight for the scheduler.
func (t *tenants) weight(name string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.get(name).cfg.Weight
}

// admit charges one submission against the tenant's quota and claims an
// in-flight slot. On acceptance it returns ("", 0); on rejection, the reason
// ("tenant_rate" or "tenant_inflight") and the Retry-After to advertise.
// Accepted submissions that fail later (queue full, draining, idempotency
// race) must call unadmit to return both the token and the slot.
func (t *tenants) admit(name string) (reason string, retryAfter time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.get(name)
	if ts.cfg.SubmitRate > 0 {
		now := t.now()
		ts.tokens += now.Sub(ts.last).Seconds() * ts.cfg.SubmitRate
		if burst := float64(ts.cfg.SubmitBurst); ts.tokens > burst {
			ts.tokens = burst
		}
		ts.last = now
		if ts.tokens < 1 {
			// Advertise when the next whole token lands, rounded up: a client
			// sleeping exactly this long will be admitted.
			deficit := (1 - ts.tokens) / ts.cfg.SubmitRate
			return "tenant_rate", time.Duration(math.Ceil(deficit)) * time.Second
		}
	}
	if ts.cfg.MaxInFlight > 0 && ts.inflight >= ts.cfg.MaxInFlight {
		return "tenant_inflight", time.Second
	}
	if ts.cfg.SubmitRate > 0 {
		ts.tokens--
	}
	ts.inflight++
	return "", 0
}

// unadmit rolls back an admit whose submission was rejected downstream.
func (t *tenants) unadmit(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.get(name)
	if ts.cfg.SubmitRate > 0 {
		if ts.tokens++; ts.tokens > float64(ts.cfg.SubmitBurst) {
			ts.tokens = float64(ts.cfg.SubmitBurst)
		}
	}
	if ts.inflight > 0 {
		ts.inflight--
	}
}

// restore claims an in-flight slot without charging the bucket — journal
// recovery re-registering jobs that were admitted by a previous process.
func (t *tenants) restore(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.get(name).inflight++
}

// release frees the tenant's in-flight slot when its job goes terminal.
func (t *tenants) release(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ts := t.get(name); ts.inflight > 0 {
		ts.inflight--
	}
}
