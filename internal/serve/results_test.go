package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"

	"repro/internal/cache"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// getResultsPage fetches one page of /v1/jobs/{id}/results.
func getResultsPage(t *testing.T, base, id string, offset, limit int) (ResultsPage, int) {
	t.Helper()
	url := fmt.Sprintf("%s/v1/jobs/%s/results?offset=%d&limit=%d", base, id, offset, limit)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pg ResultsPage
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&pg); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return pg, resp.StatusCode
}

// getJSONL downloads /results.jsonl and returns the raw lines.
func getJSONL(t *testing.T, base, id string) ([][]byte, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/results.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var lines [][]byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<26)
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			lines = append(lines, append([]byte(nil), sc.Bytes()...))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines, resp.StatusCode
}

// TestResultsPaginationAndJSONL: the paginated endpoint and the JSONL stream
// both serve the loss-free codec bytes off the spill file — walking the pages
// reassembles exactly the JSONL download, and both decode to the same
// payload ?full=1 ships, point for point.
func TestResultsPaginationAndJSONL(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	const n = 7
	specs := make([]PointSpec, n)
	for i := range specs {
		specs[i] = hopfSpec(fmt.Sprintf("pg%d", i), 1e3+float64(i))
	}
	_, st := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Points: specs, Workers: 2})
	done := waitState(t, ts.URL, st.ID, terminal)
	if done.State != StateDone {
		t.Fatalf("job: %+v", done)
	}

	lines, code := getJSONL(t, ts.URL, st.ID)
	if code != http.StatusOK || len(lines) != n {
		t.Fatalf("jsonl: status %d, %d lines, want 200 with %d", code, len(lines), n)
	}

	// Walk the pages with a width that forces pagination and splice them.
	var paged []json.RawMessage
	offset := 0
	for {
		pg, code := getResultsPage(t, ts.URL, st.ID, offset, 3)
		if code != http.StatusOK {
			t.Fatalf("page at %d: status %d", offset, code)
		}
		if pg.Total != n || pg.Spilled != n || pg.Degraded {
			t.Fatalf("page header: %+v", pg)
		}
		paged = append(paged, pg.Results...)
		if pg.NextOffset == nil {
			break
		}
		if *pg.NextOffset <= offset {
			t.Fatalf("next_offset %d did not advance past %d", *pg.NextOffset, offset)
		}
		offset = *pg.NextOffset
	}
	if len(paged) != n {
		t.Fatalf("paged walk yielded %d results, want %d", len(paged), n)
	}
	for i := range paged {
		if !bytes.Equal(paged[i], lines[i]) {
			t.Fatalf("point %d: paged bytes differ from the JSONL line", i)
		}
	}

	// Both decode to the ?full=1 payload: same codec, same values, including
	// the PSS aliasing the loss-free codec restores.
	full := getStatus(t, ts.URL, st.ID, true)
	if len(full.Full) != n {
		t.Fatalf("full payload: %d results, want %d", len(full.Full), n)
	}
	for i, raw := range lines {
		var res sweep.PointResult
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if res.Index != i || res.Name != full.Full[i].Name {
			t.Fatalf("line %d decodes to index %d name %q, full has %q", i, res.Index, res.Name, full.Full[i].Name)
		}
		want, err := json.Marshal(&full.Full[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, want) {
			t.Fatalf("point %d: spilled bytes are not the codec encoding of the ?full=1 result", i)
		}
	}
}

// TestResultsAfterJournalRecovery: a terminal job recovered from the journal
// serves its loss-free results again — ?full=1, pages and the JSONL stream
// all come back from the spill file that survived next to the WAL. Before
// the result store this was the documented gap: replayed jobs were
// summary-only forever.
func TestResultsAfterJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	const n = 5
	specs := make([]PointSpec, n)
	for i := range specs {
		specs[i] = hopfSpec(fmt.Sprintf("rec%d", i), 2e3+float64(i))
	}

	s1 := New(Config{Workers: 2, JournalDir: dir})
	ts1 := httptest.NewServer(s1)
	waitReady(t, ts1.URL)
	_, st := postJSON(t, ts1.URL+"/v1/sweep", SweepRequest{Points: specs, Workers: 2})
	if waitState(t, ts1.URL, st.ID, terminal).State != StateDone {
		t.Fatal("first incarnation failed")
	}
	wantLines, code := getJSONL(t, ts1.URL, st.ID)
	if code != http.StatusOK || len(wantLines) != n {
		t.Fatalf("pre-restart jsonl: status %d, %d lines", code, len(wantLines))
	}
	ts1.Close()
	s1.Shutdown(context.Background())

	s2 := New(Config{Workers: 2, JournalDir: dir})
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	waitReady(t, ts2.URL)

	full := getStatus(t, ts2.URL, st.ID, true)
	if full.State != StateDone {
		t.Fatalf("recovered job state %q", full.State)
	}
	if len(full.Full) != n {
		t.Fatalf("recovered ?full=1: %d results, want %d — the replay gap is back", len(full.Full), n)
	}
	gotLines, code := getJSONL(t, ts2.URL, st.ID)
	if code != http.StatusOK || len(gotLines) != n {
		t.Fatalf("post-restart jsonl: status %d, %d lines", code, len(gotLines))
	}
	for i := range wantLines {
		if !bytes.Equal(wantLines[i], gotLines[i]) {
			t.Fatalf("point %d: recovered bytes differ from the original spill", i)
		}
	}
	pg, code := getResultsPage(t, ts2.URL, st.ID, 0, n)
	if code != http.StatusOK || len(pg.Results) != n || pg.Degraded {
		t.Fatalf("recovered page: status %d, %+v", code, pg)
	}
}

// TestChaosResultsWriteFault: with every spill append failing (disk full, in
// effect), jobs still run to done with full summaries — the loss-free payload
// degrades away and the degradation is visible in the results endpoints and
// counted in metrics. Results are an availability surface, not a correctness
// dependency.
func TestChaosResultsWriteFault(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	defer faultinject.Enable(faultinject.Plan{
		faultinject.ServeResultsWrite: {Mode: faultinject.ModeError},
	})()

	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	specs := []PointSpec{hopfSpec("w0", 3e3), hopfSpec("w1", 3e3 + 1)}
	_, st := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Points: specs})
	done := waitState(t, ts.URL, st.ID, terminal)
	if done.State != StateDone {
		t.Fatalf("job under spill faults: %+v", done)
	}
	if len(done.Results) != 2 {
		t.Fatalf("summaries under spill faults: %d, want 2", len(done.Results))
	}
	full := getStatus(t, ts.URL, st.ID, true)
	if len(full.Full) != 0 {
		t.Fatalf("?full=1 served %d results from a degraded spill", len(full.Full))
	}
	pg, code := getResultsPage(t, ts.URL, st.ID, 0, 10)
	if code != http.StatusOK {
		t.Fatalf("page on degraded job: status %d", code)
	}
	if !pg.Degraded || pg.Spilled != 0 || len(pg.Results) != 0 {
		t.Fatalf("degraded page: %+v", pg)
	}
	if lines, code := getJSONL(t, ts.URL, st.ID); code != http.StatusOK || len(lines) != 0 {
		t.Fatalf("degraded jsonl: status %d, %d lines", code, len(lines))
	}
	snap := reg.Snapshot()
	if got := snap.Counter("pn_serve_results_errors_total", ""); got < 1 {
		t.Fatalf("result errors = %d, want >= 1", got)
	}
	if got := snap.Counter("pn_serve_results_degraded_total", ""); got < 1 {
		t.Fatalf("result degradations = %d, want >= 1", got)
	}
}

// TestChaosResultsReadFault: a failing read path answers pages with an
// explicit 500 and truncates the JSONL stream, and recovers the moment the
// fault clears — the spill file itself is untouched.
func TestChaosResultsReadFault(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, st := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Points: []PointSpec{hopfSpec("r0", 4e3)}})
	if waitState(t, ts.URL, st.ID, terminal).State != StateDone {
		t.Fatal("job failed")
	}

	disable := faultinject.Enable(faultinject.Plan{
		faultinject.ServeResultsRead: {Mode: faultinject.ModeError},
	})
	if _, code := getResultsPage(t, ts.URL, st.ID, 0, 10); code != http.StatusInternalServerError {
		t.Fatalf("page under read fault: status %d, want 500", code)
	}
	full := getStatus(t, ts.URL, st.ID, true)
	if len(full.Full) != 0 {
		t.Fatalf("?full=1 under read fault returned %d results", len(full.Full))
	}
	disable()

	pg, code := getResultsPage(t, ts.URL, st.ID, 0, 10)
	if code != http.StatusOK || len(pg.Results) != 1 {
		t.Fatalf("page after fault cleared: status %d, %d results", code, len(pg.Results))
	}
	if full := getStatus(t, ts.URL, st.ID, true); len(full.Full) != 1 {
		t.Fatalf("?full=1 after fault cleared: %d results", len(full.Full))
	}
}

// TestChaosQuotaCheckFault: the quota-check fault point rejects submissions
// as if the tenant were over its rate — 429, Retry-After, both rejection
// counters — and clears with the plan.
func TestChaosQuotaCheckFault(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	disable := faultinject.Enable(faultinject.Plan{
		faultinject.ServeQuotaCheck: {Mode: faultinject.ModeError},
	})
	body, _ := json.Marshal(CharacteriseRequest{PointSpec: hopfSpec("q0", 5e3)})
	resp, err := http.Post(ts.URL+"/v1/characterise", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit under quota fault: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	disable()

	snap := reg.Snapshot()
	if got := snap.Counter("pn_serve_rejected_total", "tenant_rate"); got < 1 {
		t.Fatalf("rejected{tenant_rate} = %d, want >= 1", got)
	}
	if got := snap.Counter("pn_serve_tenant_rejected_total", DefaultTenant); got < 1 {
		t.Fatalf("tenant_rejected{default} = %d, want >= 1", got)
	}

	resp2, st := postJSON(t, ts.URL+"/v1/characterise", CharacteriseRequest{PointSpec: hopfSpec("q0", 5e3)})
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after fault cleared: %d", resp2.StatusCode)
	}
	waitState(t, ts.URL, st.ID, terminal)
}

// TestServeResultMemoryBounded is the heap guard for the spill store: a big
// sweep must not leave an O(points) result slice behind on the server. The
// job runs against a shared cache (so points dedup onto one computation)
// and, once terminal, retained heap over the pre-submit baseline must be far
// below what holding the loss-free results in memory would cost — yet every
// loss-free payload is still downloadable from the spill file.
func TestServeResultMemoryBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates heap accounting and point cost; the bound is only meaningful in a plain build")
	}
	store, err := cache.New(cache.Options{MaxBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 2, Cache: store, MaxPoints: 4096, LaneGrant: 64})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A hopf point's loss-free payload is ~1.25 MB; 256 of them held in
	// memory — the old contract — would pin ~320 MB.
	const n = 256
	specs := make([]PointSpec, n)
	for i := range specs {
		// Same params => same content-addressed key: one characterisation,
		// n-1 cache hits, every one of which used to be retained in full.
		specs[i] = hopfSpec(fmt.Sprintf("mem%d", i), 6e3)
	}

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)

	_, st := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Points: specs, Workers: 2})
	done := waitState(t, ts.URL, st.ID, terminal)
	if done.State != StateDone || done.DonePoints != n {
		t.Fatalf("job: %+v", done)
	}

	runtime.GC()
	runtime.ReadMemStats(&m1)
	var retained int64
	if m1.HeapAlloc > m0.HeapAlloc {
		retained = int64(m1.HeapAlloc - m0.HeapAlloc)
	}
	// Summaries + SSE history cost a few KiB per point; the loss-free
	// results cost ~1.25 MB each. A 64 KiB/point bound leaves 20x slack
	// for GC noise and the one cached entry while still failing decisively
	// if a result slice sneaks back in (which would sit 20x above it).
	if limit := int64(n * 64 << 10); retained > limit {
		t.Fatalf("server retains %d bytes after a %d-point sweep (limit %d): per-job results are back in memory", retained, n, limit)
	}

	lines, code := getJSONL(t, ts.URL, st.ID)
	if code != http.StatusOK || len(lines) != n {
		t.Fatalf("jsonl after big sweep: status %d, %d lines, want %d", code, len(lines), n)
	}
}

// TestResultSpillScanTolerance: a torn tail (partial frame) on reopen is
// truncated, everything before it stays readable — the same stance journal
// replay takes.
func TestResultSpillScanTolerance(t *testing.T) {
	dir := t.TempDir()
	rs := &resultStore{dir: dir}
	rf := rs.open("jt", 3)
	if rf == nil {
		t.Fatal("open failed")
	}
	for i := 0; i < 2; i++ {
		if err := rf.append(i, []byte(fmt.Sprintf(`{"index":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	rf.seal()
	rf.closeFile()

	// Tear the tail: append half a frame header.
	p := rs.path("jt")
	f, err := os.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 9}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rf2 := rs.open("jt", 3)
	if rf2 == nil {
		t.Fatal("reopen failed")
	}
	defer rf2.closeFile()
	n, total, degraded := rf2.snapshot()
	if n != 2 || total != 3 || degraded {
		t.Fatalf("after torn tail: n=%d total=%d degraded=%v", n, total, degraded)
	}
	// The truncated file accepts the missing frame again.
	if err := rf2.append(2, []byte(`{"index":2}`)); err != nil {
		t.Fatal(err)
	}
	if n, _, _ := rf2.snapshot(); n != 3 {
		t.Fatalf("appends after truncation: n=%d", n)
	}
	for i := 0; i < 3; i++ {
		raw, err := rf2.frame(i)
		if err != nil || raw == nil {
			t.Fatalf("frame %d unreadable after recovery: %v", i, err)
		}
	}
}
