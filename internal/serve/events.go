package serve

import "sync"

// Event is one entry of a job's progress stream, delivered over SSE and
// replayable from the beginning: every event carries a monotonically
// increasing per-job sequence number, so a client that reconnects with
// Last-Event-ID resumes exactly where it left off.
type Event struct {
	Seq   int64  `json:"seq"`
	Type  string `json:"type"`            // "state" or "point"
	State string `json:"state,omitempty"` // job state, on type "state"
	// Point is the finished point's summary, on type "point". Points arrive
	// in completion order — cached points near-instantly, computed ones much
	// later — but Point.Index is always exact (see sweep.Config.OnPoint).
	Point *PointSummary `json:"point,omitempty"`
}

// eventLog is an append-only in-memory event history with broadcast: readers
// replay everything after a sequence number, then block on a channel that
// closes at the next append. close marks the stream complete so readers can
// finish after draining.
type eventLog struct {
	mu      sync.Mutex
	events  []Event
	changed chan struct{}
	done    bool
}

func newEventLog() *eventLog { return &eventLog{changed: make(chan struct{})} }

// append stamps ev with the next sequence number, stores it, and wakes every
// blocked reader.
func (l *eventLog) append(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return // terminal: late hooks from an abandoned attempt are dropped
	}
	ev.Seq = int64(len(l.events)) + 1
	l.events = append(l.events, ev)
	close(l.changed)
	l.changed = make(chan struct{})
}

// close marks the stream complete and wakes readers one last time.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.done = true
	close(l.changed)
	l.changed = make(chan struct{})
}

// since returns every event with Seq > after, a channel that closes on the
// next append (or close), and whether the stream is complete. A reader loops:
// drain, flush, and — unless done with nothing left — wait on the channel.
func (l *eventLog) since(after int64) ([]Event, <-chan struct{}, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	if n := int64(len(l.events)); after < n {
		out = append(out, l.events[after:]...)
	}
	return out, l.changed, l.done
}
