package serve

import (
	"sync"

	"repro/internal/sweep"
)

// Event is one entry of a job's progress stream, delivered over SSE and
// replayable from the beginning: every event carries a monotonically
// increasing per-job sequence number, so a client that reconnects with
// Last-Event-ID resumes exactly where it left off. With a journal attached,
// events survive a process crash too — the restarted server restores the
// journaled history under the same sequence numbers and resumes the job, so
// Last-Event-ID replay spans restarts. Delivery across a crash is
// at-least-once: a resumed job re-reports its points (as cache hits), so
// consumers must key on Point.Index, never on arrival order or count.
type Event struct {
	Seq   int64  `json:"seq"`
	Type  string `json:"type"`            // "state", "point" or "compose"
	State string `json:"state,omitempty"` // job state, on type "state"
	// Error carries the job-level failure on terminal "state" events
	// (failed/canceled), with its budget/panic classification intact.
	Error *sweep.RemoteError `json:"error,omitempty"`
	// Point is the finished point's summary, on type "point". Points arrive
	// in completion order — cached points near-instantly, computed ones much
	// later — but Point.Index is always exact (see sweep.Config.OnPoint).
	Point *PointSummary `json:"point,omitempty"`
	// Compose is the composition summary, on type "compose" — emitted once by
	// a compose job after its legs resolved and the chain composed, just
	// before the terminal state event.
	Compose *ComposeSummary `json:"compose,omitempty"`
}

// eventLog is an append-only in-memory event history with broadcast: readers
// replay everything after a sequence number, then block on a channel that
// closes at the next append. close marks the stream complete so readers can
// finish after draining.
type eventLog struct {
	mu      sync.Mutex
	events  []Event
	changed chan struct{}
	done    bool
}

func newEventLog() *eventLog { return &eventLog{changed: make(chan struct{})} }

// append stamps ev with the next sequence number, stores it, and wakes every
// blocked reader. It returns the stamped event and whether it was stored
// (false once the stream is closed), so callers can journal exactly what a
// subscriber will see.
func (l *eventLog) append(ev Event) (Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return ev, false // terminal: late hooks from an abandoned attempt are dropped
	}
	ev.Seq = int64(len(l.events)) + 1
	l.events = append(l.events, ev)
	close(l.changed)
	l.changed = make(chan struct{})
	return ev, true
}

// restore preloads journaled history into a fresh log: events keep their
// original sequence numbers (they must be the contiguous prefix 1..n) so a
// client reconnecting with a pre-crash Last-Event-ID resumes correctly, and
// new appends continue at n+1.
func (l *eventLog) restore(evs []Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append([]Event(nil), evs...)
}

// close marks the stream complete and wakes readers one last time.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.done = true
	close(l.changed)
	l.changed = make(chan struct{})
}

// since returns every event with Seq > after, a channel that closes on the
// next append (or close), and whether the stream is complete. A reader loops:
// drain, flush, and — unless done with nothing left — wait on the channel.
func (l *eventLog) since(after int64) ([]Event, <-chan struct{}, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	if n := int64(len(l.events)); after < n {
		out = append(out, l.events[after:]...)
	}
	return out, l.changed, l.done
}
