package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/pll"
	"repro/internal/sweep"
)

// composeReq builds a one-stage request locking a characterised hopf "VCO" to
// an inline crystal-like reference: the reference is quiet enough that far
// outside the loop bandwidth the composite is the bare VCO Lorentzian.
func composeReq(spec PointSpec, bwHz float64) ComposeRequest {
	return ComposeRequest{
		Stages: []ComposeStage{{
			Ref:             &ComposeLeg{Leg: pll.Leg{Name: "xo", F0Hz: 0.1, C: 1e-24}},
			VCO:             ComposeLeg{Spec: &spec},
			LoopBandwidthHz: bwHz,
		}},
		Grid:         pll.Grid{StartHz: 1e-3, StopHz: 100},
		JitterBandHz: [2]float64{0.01, 10},
	}
}

// lorentzDBc is the paper's stationary spectrum (Eq. 27) in dBc/Hz.
func lorentzDBc(f0, c, f float64) float64 {
	f02c := f0 * f0 * c
	return 10 * math.Log10(f02c/(math.Pi*math.Pi*f02c*f02c+f*f))
}

// TestComposeFanInE2E is the acceptance path for the composition layer: 100
// compose jobs sharing 3 distinct oscillator legs cost exactly 3
// characterisations (cache + singleflight fan-in), and each composite matches
// the standalone VCO Lorentzian within 0.1 dB far outside the loop bandwidth.
func TestComposeFanInE2E(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 4, Queue: 256, Cache: store})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	legs := []PointSpec{hopfSpec("leg0", 3), hopfSpec("leg1", 4), hopfSpec("leg2", 5)}
	const jobs = 100
	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		// Distinct loop bandwidths make every request body distinct while the
		// oscillator legs rotate over the same three specs.
		req := composeReq(legs[i%3], 0.02+float64(i)*1e-5)
		resp, st := postJSON(t, ts.URL+"/v1/compose", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("compose %d: status %d", i, resp.StatusCode)
		}
		if st.Kind != "compose" || st.Points != 1 {
			t.Fatalf("compose %d status: %+v", i, st)
		}
		ids[i] = st.ID
	}
	for _, id := range ids {
		st := waitState(t, ts.URL, id, terminal)
		if st.State != StateDone || st.FailedPoints != 0 {
			t.Fatalf("job %s: %+v", id, st)
		}
		if st.Compose == nil || st.Compose.JitterSec <= 0 {
			t.Fatalf("job %s carried no compose summary: %+v", id, st.Compose)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counter("pn_core_characterisations_total", "ok"); got != 3 {
		t.Fatalf("%d characterisations for %d compose jobs over 3 legs, want exactly 3", got, jobs)
	}
	if got := snap.Counter("pn_serve_submitted_total", "compose"); got != jobs {
		t.Fatalf("pn_serve_submitted_total{compose} = %d, want %d", got, jobs)
	}
	if got := snap.Counter("pn_pll_compositions_total", "ok"); got != jobs {
		t.Fatalf("pn_pll_compositions_total{ok} = %d, want %d", got, jobs)
	}

	// The composite of job 0 (bw 0.02 Hz) converges to the bare VCO Lorentzian
	// built from the job's own characterised leg at offsets ≫ loop bandwidth.
	full := getStatus(t, ts.URL, ids[0], true)
	if full.ComposeResult == nil || len(full.Full) != 1 || !full.Full[0].OK() {
		t.Fatalf("full compose payload: result=%v legs=%d", full.ComposeResult != nil, len(full.Full))
	}
	f0, c := full.Full[0].Result.F0(), full.Full[0].Result.C
	res := full.ComposeResult
	checked := 0
	for i, fm := range res.FHz {
		if fm < 2 { // 100× the loop bandwidth
			continue
		}
		want := lorentzDBc(f0, c, fm)
		if d := math.Abs(res.LdBc[i] - want); d > 0.1 {
			t.Fatalf("composite at %g Hz: %g dBc/Hz, standalone VCO %g (Δ %.3g dB > 0.1)", fm, res.LdBc[i], want, d)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no grid points far outside the loop bandwidth")
	}

	// The event stream carries exactly one compose event, before the terminal
	// state, matching the status summary.
	evs := readSSE(t, ts.URL, ids[0])
	composeEvents := 0
	for _, ev := range evs {
		if ev.Type == "compose" {
			composeEvents++
			if ev.Compose == nil || ev.Compose.JitterSec != full.Compose.JitterSec {
				t.Fatalf("compose event: %+v, status summary %+v", ev.Compose, full.Compose)
			}
		}
	}
	if composeEvents != 1 {
		t.Fatalf("%d compose events, want 1", composeEvents)
	}
	if last := evs[len(evs)-1]; last.Type != "state" || last.State != StateDone {
		t.Fatalf("stream did not end terminal: %+v", last)
	}

	// Idempotent resubmission replays the existing job instead of re-queueing.
	resp, st := postJSONKey(t, ts.URL+"/v1/compose", "compose-idem", composeReq(legs[0], 0.02))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("keyed submit: status %d", resp.StatusCode)
	}
	waitState(t, ts.URL, st.ID, terminal)
	resp2, st2 := postJSONKey(t, ts.URL+"/v1/compose", "compose-idem", composeReq(legs[0], 0.02))
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("Idempotent-Replay") != "true" || st2.ID != st.ID {
		t.Fatalf("idempotent replay: status %d, id %q (submitted %q)", resp2.StatusCode, st2.ID, st.ID)
	}
	// Same key, different body: rejected, not silently replayed.
	resp3, _ := postJSONKey(t, ts.URL+"/v1/compose", "compose-idem", composeReq(legs[1], 0.02))
	if resp3.StatusCode != http.StatusConflict {
		t.Fatalf("idempotency mismatch: status %d, want 409", resp3.StatusCode)
	}
}

// TestComposeRejections covers submission-time validation: structural
// problems answer 400 before any characterisation work queues.
func TestComposeRejections(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	post := func(req ComposeRequest) *http.Response {
		resp, _ := postJSON(t, ts.URL+"/v1/compose", req)
		return resp
	}
	// A leg with both a spec and inline numbers is ambiguous.
	both := composeReq(hopfSpec("x", 3), 0.02)
	both.Stages[0].VCO.F0Hz = 1e9
	if resp := post(both); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("spec+inline leg: status %d, want 400", resp.StatusCode)
	}
	// No stages at all.
	if resp := post(ComposeRequest{Grid: pll.Grid{StartHz: 1, StopHz: 10}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero stages: status %d, want 400", resp.StatusCode)
	}
	// Bad grid.
	bad := composeReq(hopfSpec("x", 3), 0.02)
	bad.Grid = pll.Grid{StartHz: 10, StopHz: 1}
	if resp := post(bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inverted grid: status %d, want 400", resp.StatusCode)
	}
	// Unknown model in a spec leg fails like any sweep submission.
	unknown := composeReq(PointSpec{Model: "no-such-model"}, 0.02)
	if resp := post(unknown); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown model: status %d, want 400", resp.StatusCode)
	}
}

// TestChaosComposeLegPanicClassified fails a compose job's characterised leg
// with an injected model panic and checks the typed error classification
// survives the compose path and the JSON round trip: the job settles failed,
// and the decoded JobStatus error still matches sweep.ErrModelPanic through
// errors.Is (the sweep.RemoteError regression for compose jobs).
func TestChaosComposeLegPanicClassified(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)
	defer faultinject.Enable(faultinject.Plan{
		faultinject.OscEvalPanic: {Mode: faultinject.ModePanic},
	})()

	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, st := postJSON(t, ts.URL+"/v1/compose", composeReq(hopfSpec("boom", 3), 0.02))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	final := waitState(t, ts.URL, st.ID, terminal)
	if final.State != StateFailed {
		t.Fatalf("job state %q, want failed", final.State)
	}
	if final.Error == nil {
		t.Fatal("failed compose job carried no error")
	}
	if !errors.Is(final.Error, sweep.ErrModelPanic) {
		t.Fatalf("decoded error %+v does not match sweep.ErrModelPanic", final.Error)
	}
	if !strings.Contains(final.Error.Msg, `compose leg "boom"`) {
		t.Fatalf("error %q does not name the failed leg", final.Error.Msg)
	}
	if final.Compose != nil {
		t.Fatalf("failed job carried a compose summary: %+v", final.Compose)
	}
	// The terminal SSE event carries the same classification.
	evs := readSSE(t, ts.URL, st.ID)
	last := evs[len(evs)-1]
	if last.State != StateFailed || last.Error == nil || !errors.Is(last.Error, sweep.ErrModelPanic) {
		t.Fatalf("terminal event: %+v", last)
	}
	if got := reg.Snapshot().Counter("pn_pll_compositions_total", "ok"); got != 0 {
		t.Fatalf("composition ran despite a failed leg: %d", got)
	}
}

// TestModelsNoiseSources checks GET /v1/models reports each model's
// noise-source names — the labels a compose leg's "sources" selector accepts.
func TestModelsNoiseSources(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var models []ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	if len(models) == 0 {
		t.Fatal("no models listed")
	}
	var sawHopf bool
	for _, m := range models {
		if m.NumNoise < 1 || len(m.NoiseSources) != m.NumNoise {
			t.Fatalf("model %s: %d labels for num_noise %d", m.Name, len(m.NoiseSources), m.NumNoise)
		}
		if m.Name == "hopf" {
			sawHopf = true
			if want := []string{"x-equation", "y-equation"}; len(m.NoiseSources) != 2 ||
				m.NoiseSources[0] != want[0] || m.NoiseSources[1] != want[1] {
				t.Fatalf("hopf noise sources %v, want %v", m.NoiseSources, want)
			}
		}
	}
	if !sawHopf {
		t.Fatal("hopf not listed")
	}
}

// TestJournalComposeRecovery covers compose-job durability end to end: a
// finished compose job is queryable (with its summary) after a restart, a
// .wal cut off mid-run resumes with its leg served from the cache — the
// pipeline is never re-invoked — and a pure-inline compose job with zero
// characterisation legs survives header replay.
func TestJournalComposeRecovery(t *testing.T) {
	dir := t.TempDir()
	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := hopfSpec("leg", 3)
	req := composeReq(spec, 0.02)

	// Phase 1: run one compose job to completion under a journal ("before the
	// crash"), warming the cache with its leg.
	s1 := New(Config{Workers: 1, Cache: store, JournalDir: dir})
	ts1 := httptest.NewServer(s1)
	_, st1 := postJSON(t, ts1.URL+"/v1/compose", req)
	done1 := waitState(t, ts1.URL, st1.ID, terminal)
	if done1.State != StateDone || done1.Compose == nil {
		t.Fatalf("phase-1 job: %+v", done1)
	}
	jitter := done1.Compose.JitterSec
	ts1.Close()
	s1.Shutdown(context.Background())

	// Phase 2: crash artifacts. j5 died mid-run with a spec leg; j6 is a
	// pure-inline chain — zero characterisation legs, numbers only — whose
	// header must survive replay despite carrying no specs.
	writeJournalFile(t, dir, "j5"+walExt, []jrecord{
		{V: 1, T: "accepted", ID: "j5", Kind: "compose", Specs: []PointSpec{spec}, Workers: 1, Compose: &req},
		{V: 1, T: "event", Ev: &Event{Seq: 1, Type: "state", State: StateQueued}},
		{V: 1, T: "event", Ev: &Event{Seq: 2, Type: "state", State: StateRunning}},
	})
	inline := ComposeRequest{
		Stages: []ComposeStage{{
			Ref:             &ComposeLeg{Leg: pll.Leg{F0Hz: 1e7, C: 1e-22}},
			VCO:             ComposeLeg{Leg: pll.Leg{F0Hz: 1e9, C: 1e-18}},
			LoopBandwidthHz: 1e5,
		}},
		Grid: pll.Grid{StartHz: 100, StopHz: 1e8},
	}
	writeJournalFile(t, dir, "j6"+walExt, []jrecord{
		{V: 1, T: "accepted", ID: "j6", Kind: "compose", Compose: &inline},
		{V: 1, T: "event", Ev: &Event{Seq: 1, Type: "state", State: StateQueued}},
	})

	// Phase 3: restart over the same journal + cache; count pipeline work
	// from here only.
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)
	s2 := New(Config{Workers: 1, Cache: store, JournalDir: dir})
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	waitReady(t, ts2.URL)

	// The finished job came back queryable with its compose summary restored
	// from the journaled compose event.
	restored := getStatus(t, ts2.URL, st1.ID, false)
	if restored.State != StateDone || restored.Compose == nil || restored.Compose.JitterSec != jitter {
		t.Fatalf("restored terminal job: %+v (want jitter %g)", restored, jitter)
	}

	// The cut-off job resumed: leg from the cache, composition re-run.
	resumed := waitState(t, ts2.URL, "j5", terminal)
	if resumed.State != StateDone || resumed.CachedPoints != 1 || resumed.Compose == nil {
		t.Fatalf("resumed compose job: %+v", resumed)
	}
	if resumed.Compose.JitterSec != jitter {
		t.Fatalf("resumed jitter %g, phase-1 %g", resumed.Compose.JitterSec, jitter)
	}

	// The zero-spec inline job resumed too — the header replay accepted it.
	inlineDone := waitState(t, ts2.URL, "j6", terminal)
	if inlineDone.State != StateDone || inlineDone.Compose == nil || inlineDone.Compose.CarrierHz != 1e9 {
		t.Fatalf("inline compose job: %+v", inlineDone)
	}

	if got := reg.Snapshot().Counter("pn_core_characterisations_total", "ok"); got != 0 {
		t.Fatalf("recovery re-ran the pipeline %d times, want 0", got)
	}

	// Both resumed journals rotated to their terminal names.
	for _, id := range []string{"j5", "j6"} {
		if _, err := os.Stat(filepath.Join(dir, id+doneExt)); err != nil {
			t.Fatalf("journal %s not rotated: %v", id, err)
		}
		if _, err := os.Stat(filepath.Join(dir, id+walExt)); !os.IsNotExist(err) {
			t.Fatalf("stale %s.wal left after rotation", id)
		}
	}
}
