package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pll"
	"repro/internal/sweep"
)

// ComposeLeg is one oscillator leg of a composition request: either inline
// numbers (the embedded pll.Leg — a known f0/c pair or a datasheet FOM) or a
// Spec naming a registered model, in which case the leg is characterised
// through the same pipeline, retry ladder and content-addressed cache as any
// sweep point. That resolution is the whole point of serving composition:
// thousands of cheap compose jobs fan in on a handful of cached
// characterisations, and a leg the cache already holds never recomputes.
type ComposeLeg struct {
	// Spec, when non-nil, characterises the leg server-side; its result
	// fills the leg's F0Hz, C and PerSource (the Sources subset selection
	// still applies). Mutually exclusive with inline F0Hz/C/FOM.
	Spec *PointSpec `json:"spec,omitempty"`
	pll.Leg
}

// ComposeStage mirrors pll.Stage with servable legs.
type ComposeStage struct {
	Name              string      `json:"name,omitempty"`
	Ref               *ComposeLeg `json:"ref,omitempty"`
	VCO               ComposeLeg  `json:"vco"`
	LoopBandwidthHz   float64     `json:"loop_bandwidth_hz"`
	PhaseMarginDeg    float64     `json:"phase_margin_deg,omitempty"`
	DividerN          float64     `json:"divider_n,omitempty"`
	PFDNoisedBcHz     float64     `json:"pfd_noise_dbc_hz,omitempty"`
	DividerNoisedBcHz float64     `json:"divider_noise_dbc_hz,omitempty"`
}

// ComposeRequest is the body of POST /v1/compose: a PLL/clock-chain
// composition whose oscillator legs may be inline numbers or characterise-
// through-the-cache specs.
type ComposeRequest struct {
	Stages       []ComposeStage         `json:"stages"`
	Grid         pll.Grid               `json:"grid"`
	JitterBandHz [2]float64             `json:"jitter_band_hz,omitempty"`
	Realization  *pll.RealizationConfig `json:"realization,omitempty"`
	TimeoutMS    int64                  `json:"timeout_ms,omitempty"`
	NoCache      bool                   `json:"no_cache,omitempty"`
}

// ComposeContributor is one noise path's headline number in the summary.
type ComposeContributor struct {
	Name      string  `json:"name"`
	JitterSec float64 `json:"jitter_sec"`
}

// ComposeSummary is the compact composition outcome carried in job status
// and SSE events — the headline numbers without the grid-sized masks. The
// full pll.Result (masks, per-contributor spectra, realization) is available
// from GET /v1/jobs/{id}?full=1 on a terminal job.
type ComposeSummary struct {
	CarrierHz    float64              `json:"carrier_hz"`
	GridPoints   int                  `json:"grid_points"`
	BandHz       [2]float64           `json:"band_hz"`
	JitterRad    float64              `json:"jitter_rad"`
	JitterSec    float64              `json:"jitter_sec"`
	Contributors []ComposeContributor `json:"contributors,omitempty"`
}

func summarizeCompose(r *pll.Result) ComposeSummary {
	s := ComposeSummary{
		CarrierHz:  r.CarrierHz,
		GridPoints: len(r.FHz),
		BandHz:     r.BandHz,
		JitterRad:  r.JitterRad,
		JitterSec:  r.JitterSec,
	}
	for _, c := range r.Contributors {
		s.Contributors = append(s.Contributors, ComposeContributor{Name: c.Name, JitterSec: c.JitterSec})
	}
	return s
}

// Validate shape-checks the request exactly as submission does; CLI front
// ends call it before doing any characterisation work.
func (req *ComposeRequest) Validate() error { return req.validate() }

// SpecLegs returns the legs that need characterisation, in the order
// BuildConfig consumes results — the pnpll CLI runs them through the local
// sweep engine where the server would run them through its job queue.
func (req *ComposeRequest) SpecLegs() []PointSpec { return req.specLegs() }

// BuildConfig resolves the request into a runnable pll.Config from
// characterisation results in SpecLegs order.
func (req *ComposeRequest) BuildConfig(results []sweep.PointResult) (*pll.Config, error) {
	return req.buildConfig(results)
}

// specLegs collects the legs that need a server-side characterisation, in
// deterministic order (per stage: ref, then vco) — the same order
// buildConfig consumes results in.
func (req *ComposeRequest) specLegs() []PointSpec {
	var specs []PointSpec
	for i := range req.Stages {
		st := &req.Stages[i]
		if st.Ref != nil && st.Ref.Spec != nil {
			specs = append(specs, *st.Ref.Spec)
		}
		if st.VCO.Spec != nil {
			specs = append(specs, *st.VCO.Spec)
		}
	}
	return specs
}

// validate rejects structurally bad requests at submission time, before the
// job queues: leg exclusivity here, loop/grid/realization shape via the
// composition engine's own validator (spec legs are checked as point specs
// by submit). Numeric leg validation (c > 0, source names) happens at
// compose time, after characterisation fills the legs in.
func (req *ComposeRequest) validate() error {
	if len(req.Stages) == 0 {
		return fmt.Errorf("compose needs at least one stage")
	}
	leg := func(l *ComposeLeg, pos string) error {
		if l.Spec == nil {
			return nil
		}
		if l.FOM != nil || l.F0Hz != 0 || l.C != 0 || len(l.PerSource) > 0 {
			return fmt.Errorf("%s: give either a spec or inline f0/c/fom values, not both", pos)
		}
		return nil
	}
	for i := range req.Stages {
		st := &req.Stages[i]
		if st.Ref != nil {
			if err := leg(st.Ref, fmt.Sprintf("stage %d ref", i)); err != nil {
				return err
			}
		}
		if err := leg(&st.VCO, fmt.Sprintf("stage %d vco", i)); err != nil {
			return err
		}
	}
	// Shape-check everything that does not depend on characterised numbers.
	cfg := req.buildShape()
	return cfg.Validate()
}

// buildShape assembles the pll.Config skeleton: stages, loop knobs, grid,
// band, realization. Spec legs keep their zero numeric fields — Validate
// does not inspect legs, and buildConfig fills them from results.
func (req *ComposeRequest) buildShape() *pll.Config {
	cfg := &pll.Config{
		Grid:         req.Grid,
		JitterBandHz: req.JitterBandHz,
		Realization:  req.Realization,
		Stages:       make([]pll.Stage, len(req.Stages)),
	}
	for i := range req.Stages {
		st := &req.Stages[i]
		cfg.Stages[i] = pll.Stage{
			Name:              st.Name,
			VCO:               st.VCO.Leg,
			LoopBandwidthHz:   st.LoopBandwidthHz,
			PhaseMarginDeg:    st.PhaseMarginDeg,
			DividerN:          st.DividerN,
			PFDNoisedBcHz:     st.PFDNoisedBcHz,
			DividerNoisedBcHz: st.DividerNoisedBcHz,
		}
		if st.Ref != nil {
			ref := st.Ref.Leg
			cfg.Stages[i].Ref = &ref
		}
	}
	return cfg
}

// fillLeg turns a characterised point into leg numbers: carrier from the
// PSS period, the scalar c, and the per-source split so a Sources selection
// in the request still applies. A failed leg fails the whole composition
// with the point's own error — budget/panic classification intact, so
// errors.Is against the pipeline sentinels works on the client after a JSON
// round trip (sweep.RemoteError).
func fillLeg(l *pll.Leg, spec *PointSpec, r *sweep.PointResult) error {
	if !r.OK() {
		name := spec.Name
		if name == "" {
			name = spec.Model
		}
		return fmt.Errorf("compose leg %q: %w", name, r.Err)
	}
	if l.Name == "" {
		l.Name = r.Name
	}
	l.F0Hz = r.Result.F0()
	l.C = r.Result.C
	l.PerSource = perSource(r.Result)
	return nil
}

func perSource(res *core.Result) []pll.SourceC {
	if len(res.PerSource) == 0 {
		return nil
	}
	out := make([]pll.SourceC, len(res.PerSource))
	for i, s := range res.PerSource {
		out[i] = pll.SourceC{Label: s.Label, C: s.C}
	}
	return out
}

// buildConfig resolves the request into a runnable pll.Config, consuming
// the characterisation results in the same order specLegs emitted them.
func (req *ComposeRequest) buildConfig(results []sweep.PointResult) (*pll.Config, error) {
	cfg := req.buildShape()
	next := 0
	take := func() (*sweep.PointResult, error) {
		if next >= len(results) {
			return nil, fmt.Errorf("compose: %d characterised legs for %d spec slots", len(results), next+1)
		}
		r := &results[next]
		next++
		return r, nil
	}
	for i := range req.Stages {
		st := &req.Stages[i]
		if st.Ref != nil && st.Ref.Spec != nil {
			r, err := take()
			if err != nil {
				return nil, err
			}
			if err := fillLeg(cfg.Stages[i].Ref, st.Ref.Spec, r); err != nil {
				return nil, err
			}
		}
		if st.VCO.Spec != nil {
			r, err := take()
			if err != nil {
				return nil, err
			}
			if err := fillLeg(&cfg.Stages[i].VCO, st.VCO.Spec, r); err != nil {
				return nil, err
			}
		}
	}
	return cfg, nil
}

// fingerprint folds the request's full identity into an idempotency
// fingerprint. The canonical JSON form is deterministic: struct fields
// encode in declaration order and map keys (spec params) sort.
func (req *ComposeRequest) fingerprint() string {
	data, err := json.Marshal(req)
	if err != nil {
		return fmt.Sprintf("compose-unmarshalable: %v", err)
	}
	return string(data)
}

func (s *Server) handleCompose(w http.ResponseWriter, r *http.Request) {
	var req ComposeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := req.validate(); err != nil {
		serveMetrics.Get().rejected.With("bad_request").Inc()
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	specs := req.specLegs()
	// Legs characterise in parallel like a sweep's points, one worker per
	// leg up to the server cap.
	workers := len(specs)
	if workers < 1 {
		workers = 1
	}
	if workers > s.cfg.MaxSweepWorkers {
		workers = s.cfg.MaxSweepWorkers
	}
	s.submit(w, r, "compose", specs, req.TimeoutMS, workers, req.NoCache, 0, &req)
}

// composeJob runs the composition step of a compose job: the legs have
// already characterised (results in j.legs, possibly all cache hits), so
// this is pure frequency-domain arithmetic under the job's span. Returns
// ("", nil) on success after recording the composite on the job and
// emitting the compose event.
func (s *Server) composeJob(j *job, jtok *budget.Token, span *obs.Span) (string, error) {
	// A cancel/timeout that landed before or during the legs wins here too:
	// a composed result from a canceled job would be indistinguishable from
	// a completed one.
	if err := jtok.Err(); err != nil {
		return classify(err), err
	}
	j.mu.Lock()
	results := j.legs
	j.mu.Unlock()
	cfg, err := j.compose.buildConfig(results)
	if err != nil {
		return classify(err), err
	}
	comp, err := pll.ComposeWithSpan(cfg, span)
	if err != nil {
		return classify(err), err
	}
	sum := summarizeCompose(comp)
	j.mu.Lock()
	j.composite = comp
	j.composeSum = &sum
	j.mu.Unlock()
	j.emit(Event{Type: "compose", Compose: &sum}, false)
	return "", nil
}
