// Package serve is the characterisation-as-a-service layer: an HTTP JSON API
// that runs phase-noise characterisation jobs — single points or whole
// parameter sweeps — on a bounded worker pool, in front of the
// content-addressed result cache (internal/cache) and the batch engine
// (internal/sweep).
//
// Jobs are pure data: a registered model name plus a parameter map (see
// internal/osc's registry), so requests are reproducible, cacheable by
// content, and never execute caller code. The API:
//
//	POST /v1/characterise   — submit a one-point job        → JobStatus (202)
//	POST /v1/sweep          — submit a multi-point job      → JobStatus (202)
//	GET  /v1/jobs/{id}      — job status (+?full=1 payload) → JobStatus
//	GET  /v1/jobs/{id}/events — progress stream (SSE, replayable by Last-Event-ID)
//	GET  /v1/jobs/{id}/trace  — merged distributed timeline (+ ?format=jsonl raw)
//	POST /v1/jobs/{id}/cancel — trip the job's budget token → JobStatus
//	GET  /v1/cluster/status — live fleet view (workers/leases on a coordinator)
//	GET  /v1/models         — registered models + defaults
//	GET  /healthz           — liveness (always 200 while the process serves)
//	GET  /readyz            — readiness (503 while draining or during journal replay)
//
// Back-pressure is explicit: a bounded queue (429 + Retry-After when full), a
// request-size limit (413), and a draining state (503) entered by Shutdown,
// which stops intake, drains the queue, and — if the grace context expires —
// cancels in-flight jobs through their budget tokens.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/osc"
	"repro/internal/pll"
	"repro/internal/sweep"
)

// Config tunes a Server. The zero value is usable: 2 workers, a queue of 16,
// no cache, a 1 MiB body limit.
type Config struct {
	// Workers is the job worker pool size (default 2). Each worker runs one
	// job at a time; a sweep job parallelises internally up to MaxSweepWorkers.
	Workers int
	// Queue bounds accepted-but-not-started jobs (default 16); submissions
	// beyond it are rejected with 429.
	Queue int
	// Cache, when non-nil, is the content-addressed result store consulted
	// for every point (shared with CLI runs pointed at the same directory).
	Cache *cache.Store
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxPoints caps the points of one sweep request (default 4096).
	MaxPoints int
	// MaxSweepWorkers caps a job's internal sweep parallelism (default
	// GOMAXPROCS).
	MaxSweepWorkers int
	// Retain bounds how many terminal jobs stay queryable (default 256);
	// beyond it the oldest terminal jobs are evicted.
	Retain int
	// MaxJobWall, when > 0, is a server-side ceiling on any job's wall clock
	// from worker pickup, applied on top of the request's own timeout_ms.
	MaxJobWall time.Duration
	// JournalDir, when non-empty, makes jobs durable: every accepted job gets
	// an append-only JSONL journal under this directory (header fsync'd
	// before the 202 goes out, terminal events fsync'd and rotated), and on
	// restart the server replays the directory — terminal jobs come back
	// queryable, non-terminal jobs are re-enqueued and resumed through the
	// result cache, so already-computed points are cache hits. Empty keeps
	// the PR-4 behaviour: jobs live only in process memory.
	JournalDir string
	// Runner, when non-nil, executes jobs instead of the in-process sweep
	// engine — the hook a cluster coordinator uses to lease points out to
	// worker nodes. Everything around execution (queueing, journalling,
	// SSE, cancellation, idempotency) is unchanged. See SweepRunner.
	Runner SweepRunner
	// FlightRecorder is the per-attempt flight-recorder ring capacity passed
	// to the sweep engine: a crashing attempt (panic, timeout, abandonment)
	// dumps its last spans into the journalled failure. Default 64; negative
	// disables.
	FlightRecorder int
	// ClusterStatus, when non-nil, supplies the coordinator's live fleet view
	// (workers, breaker states, in-flight leases) for GET /v1/cluster/status.
	// Nil on plain nodes: the endpoint then reports only this node's numbers.
	ClusterStatus func() ([]WorkerStatus, []LeaseStatus)
	// TenantDefaults is the admission policy applied to every tenant without
	// an explicit entry in Tenants — including DefaultTenant. The zero value
	// means no quotas and weight 1. See TenantConfig.
	TenantDefaults TenantConfig
	// Tenants overrides the admission policy per tenant name.
	Tenants map[string]TenantConfig
	// LaneGrant is how many points of a local batch sweep one scheduler
	// grant executes before the job yields its worker back to the fair
	// queue (default 32). Larger grants amortise scheduling overhead;
	// smaller ones tighten the bound on how long a queued interactive job
	// waits behind a batch sweep.
	LaneGrant int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Queue <= 0 {
		c.Queue = 16
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxPoints <= 0 {
		c.MaxPoints = 4096
	}
	if c.MaxSweepWorkers <= 0 {
		c.MaxSweepWorkers = runtime.GOMAXPROCS(0)
	}
	if c.Retain <= 0 {
		c.Retain = 256
	}
	if c.FlightRecorder == 0 {
		c.FlightRecorder = 64
	} else if c.FlightRecorder < 0 {
		c.FlightRecorder = 0
	}
	if c.LaneGrant <= 0 {
		c.LaneGrant = 32
	}
	return c
}

// job is one queued/running/terminal characterisation job.
type job struct {
	id           string
	kind         string // "characterise", "sweep" or "compose"
	tenant       string // admission identity (DefaultTenant when none was sent)
	specs        []PointSpec
	compose      *ComposeRequest // non-nil for compose jobs: the composition to run over the legs
	jobTimeout   time.Duration
	sweepWorkers int
	noCache      bool
	leaseTTL     time.Duration // > 0: job self-cancels unless renewed within each TTL window

	tok      *budget.Token // child of the server root; tripped by cancel/shutdown
	cancel   func()
	events   *eventLog
	jl       *jobJournal     // nil when journalling is off
	rf       *resultFile     // spill file for loss-free results (nil = summary-only)
	idem     string          // Idempotency-Key this job was submitted under ("" = none)
	trace    *jobTrace       // distributed timeline (always non-nil for runnable jobs)
	traceCtx obs.SpanContext // trace ID + remote parent from the submit's traceparent

	granted bool     // owned by sched.mu: the job has had its first worker grant
	exec    *jobExec // owned by the granted worker: cross-chunk execution state

	leaseMu sync.Mutex
	leaseT  *time.Timer // armed while the lease is live; Reset on renew

	mu                      sync.Mutex
	state                   string
	legs                    []sweep.PointResult // compose jobs only: leg results for the composition step
	summaries               []PointSummary      // completed points so far, input order (sparse until terminal)
	composite               *pll.Result         // compose jobs, terminal only (dies with the process; the summary survives)
	composeSum              *ComposeSummary     // compose jobs: journaled headline numbers
	doneN, cachedN, failedN int
	err                     error
	wall                    time.Duration
}

// jobExec is the execution state a job carries between scheduler grants: a
// chunked batch sweep runs several grants, everything else exactly one. It
// is created on the first grant and only ever touched by the worker holding
// the job, so it needs no locking of its own.
type jobExec struct {
	start  time.Time
	span   *obs.Span
	jtok   *budget.Token
	points []sweep.Point // resolved specs (local execution only)
	store  *cache.Store
	next   int // first point index the next chunk runs
	onPt   func(res sweep.PointResult)
	state  string // terminal state once decided ("" = still running)
	err    error
}

// emit appends ev to the job's event stream and journals exactly what was
// stored (same sequence number). terminal events reach stable storage and
// rotate the journal before emit returns.
func (j *job) emit(ev Event, terminal bool) {
	stamped, ok := j.events.append(ev)
	if ok {
		j.jl.event(stamped, terminal)
	}
}

// armLease starts (or, on renewal, rewinds) the job's lease timer. On expiry
// the job cancels itself through its budget token — a leased job whose
// coordinator died or partitioned away stops consuming the worker; its
// finished points are already in the shared result cache for whoever picks
// the lease up next. No-op for jobs submitted without a lease TTL.
func (j *job) armLease() {
	if j.leaseTTL <= 0 {
		return
	}
	j.leaseMu.Lock()
	defer j.leaseMu.Unlock()
	if j.leaseT == nil {
		j.leaseT = time.AfterFunc(j.leaseTTL, func() {
			serveMetrics.Get().leaseExpired.Inc()
			j.cancel()
		})
		return
	}
	j.leaseT.Reset(j.leaseTTL)
}

// stopLease disarms the lease timer once the job is terminal (a late expiry
// against a finished job would be harmless but noisy).
func (j *job) stopLease() {
	j.leaseMu.Lock()
	if j.leaseT != nil {
		j.leaseT.Stop()
	}
	j.leaseMu.Unlock()
}

// setState transitions the job and emits a state event.
func (j *job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
	j.emit(Event{Type: "state", State: state}, false)
}

// status snapshots the job for the API. The ?full=1 payload decodes off the
// spill file — the server no longer retains a per-job result slice — so it
// is present whenever the job is terminal and every point was spilled,
// including after a journal recovery.
func (j *job) status(full bool) JobStatus {
	j.mu.Lock()
	st := JobStatus{
		ID:           j.id,
		Kind:         j.kind,
		State:        j.state,
		Points:       len(j.specs),
		DonePoints:   j.doneN,
		CachedPoints: j.cachedN,
		FailedPoints: j.failedN,
		Error:        sweep.EncodeError(j.err),
		WallMS:       float64(j.wall) / float64(time.Millisecond),
	}
	for _, s := range j.summaries {
		if s.Name != "" || s.OK { // skip never-filled slots of a cut-short job
			st.Results = append(st.Results, s)
		}
	}
	st.Compose = j.composeSum
	if full {
		st.ComposeResult = j.composite
	}
	terminal := j.state == StateDone || j.state == StateFailed || j.state == StateCanceled
	j.mu.Unlock()
	if full && terminal {
		if res := j.rf.decodeAll(); res != nil {
			serveMetrics.Get().resultReads.With("full").Inc()
			st.Full = res
		}
	}
	return st
}

// idemEntry maps one Idempotency-Key to the job it created, plus the
// fingerprint of the request body it arrived with (reuse with a different
// body is a client error, not a replay).
type idemEntry struct {
	id string
	fp string
}

// Server is the job server. It implements http.Handler; mount it directly or
// behind a mux. Create with New, stop with Shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	root    *budget.Token
	stop    func()
	sched   *sched
	tenants *tenants
	results *resultStore // nil: spill unavailable, jobs serve summaries only
	wg      sync.WaitGroup
	journal *journal      // nil when journalling is off
	drainCh chan struct{} // closed when draining starts; stops the replayer
	closeQ  sync.Once
	replay  sync.WaitGroup // tracks the startup replay goroutine

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // insertion order, for terminal-job eviction
	idem     map[string]idemEntry
	seq      int64
	draining bool
	ready    bool // journal replay finished (immediately true without a journal)
}

// New builds a Server and starts its worker pool. With Config.JournalDir set
// it also begins journal replay: the job-ID space is restored synchronously
// (so new submissions never collide with recovered jobs), then recovery runs
// in the background while the server already accepts traffic — /readyz
// reports 503 until every journaled job is restored and re-enqueued.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	root, stop := budget.WithCancel(nil)
	s := &Server{
		cfg:     cfg,
		root:    root,
		stop:    stop,
		sched:   newSched(cfg.Queue),
		tenants: newTenants(cfg.TenantDefaults, cfg.Tenants),
		results: newResultStore(cfg.JournalDir),
		drainCh: make(chan struct{}),
		jobs:    make(map[string]*job),
		idem:    make(map[string]idemEntry),
	}
	if cfg.JournalDir != "" {
		jl, maxSeq, err := openJournal(cfg.JournalDir)
		if err == nil {
			s.journal = jl
			s.seq = maxSeq
		} else {
			// An unusable journal dir degrades durability, not service.
			serveMetrics.Get().journalErrors.Inc()
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/characterise", s.handleCharacterise)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/compose", s.handleCompose)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/jobs/{id}/results.jsonl", s.handleResultsJSONL)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /v1/jobs/{id}/renew", s.handleRenew)
	mux.HandleFunc("GET /v1/cluster/status", s.handleClusterStatus)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux = mux
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.journal != nil {
		s.replay.Add(1)
		go s.recoverJobs()
	} else {
		s.ready = true
	}
	return s
}

// ServeHTTP implements http.Handler. The handler-latency fault point sits in
// front of every route: ModeDelay simulates a slow server, ModeError answers
// 500 before any work happens.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if err := faultinject.Fire(faultinject.ServeHandlerLatency); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// BeginDrain flips the server to draining without stopping job execution:
// /readyz answers 503 (load balancers and cluster routers stop sending work
// here) and new submissions are rejected, while queued and running jobs keep
// making progress and status/SSE reads still work. Call it before tearing
// down the HTTP listener so the fleet routes around this node during the
// drain window instead of discovering it by connection refusal. Idempotent;
// Shutdown calls it implicitly.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	s.mu.Unlock()
}

// Shutdown drains the server: it stops accepting submissions (503), lets
// queued and running jobs finish, and — if ctx expires first — trips every
// job's budget token so in-flight work is cut off cooperatively, then waits
// for the workers to exit. Safe to call once.
//
// A shutdown during journal replay stops the replayer: recovered jobs not yet
// enqueued keep their .wal files and resume on the next start.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	// The replayer must stop before the scheduler closes (a resumed job must
	// not land on a closed queue); drainCh has already told it to bail.
	s.replay.Wait()
	s.closeQ.Do(func() { s.sched.close() })

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.stop() // cancel root token: every job token trips
		<-done
		err = ctx.Err()
	}
	// A journal-less store lives in a temp dir; release it with the workers
	// gone (terminal jobs lose their ?full payloads, as they always did
	// without a journal — the process is exiting anyway).
	s.results.close()
	return err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	// Marshal before touching the ResponseWriter: an encode failure after
	// WriteHeader would truncate the body mid-response and surface at the
	// client as an inexplicable EOF, with the status already committed as a
	// success. Pre-marshaling turns it into an honest 500.
	data, err := json.Marshal(v)
	if err != nil {
		body, _ := json.Marshal(errorBody{Error: fmt.Sprintf("encoding response: %v", err)})
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		w.Write(append(body, '\n'))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes the size-limited JSON request body, classifying the
// failure for the rejection metric.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			serveMetrics.Get().rejected.With("too_large").Inc()
			writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
		} else {
			serveMetrics.Get().rejected.With("bad_request").Inc()
			writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		}
		return false
	}
	return true
}

func (s *Server) handleCharacterise(w http.ResponseWriter, r *http.Request) {
	var req CharacteriseRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	s.submit(w, r, "characterise", []PointSpec{req.PointSpec}, req.TimeoutMS, 1, req.NoCache, 0, nil)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Points) == 0 {
		serveMetrics.Get().rejected.With("bad_request").Inc()
		writeErr(w, http.StatusBadRequest, "sweep needs at least one point")
		return
	}
	if len(req.Points) > s.cfg.MaxPoints {
		serveMetrics.Get().rejected.With("bad_request").Inc()
		writeErr(w, http.StatusBadRequest, "sweep of %d points exceeds the limit of %d", len(req.Points), s.cfg.MaxPoints)
		return
	}
	workers := req.Workers
	if workers <= 0 || workers > s.cfg.MaxSweepWorkers {
		workers = s.cfg.MaxSweepWorkers
	}
	s.submit(w, r, "sweep", req.Points, req.TimeoutMS, workers, req.NoCache, req.LeaseTTLMS, nil)
}

// idemFingerprint condenses a submission's identity — kind, every point spec,
// and the job-wide knobs — to a content address, so an Idempotency-Key reused
// with a different body is detectable as a client error rather than silently
// replaying the wrong job.
func idemFingerprint(kind string, specs []PointSpec, timeoutMS int64, workers int, noCache bool, leaseTTLMS int64, compose *ComposeRequest) string {
	f := cache.NewFingerprint()
	f.Set("kind", kind)
	if compose != nil {
		f.Set("compose", compose.fingerprint())
	}
	f.SetInt("points", len(specs))
	for i, sp := range specs {
		pfx := "p" + strconv.Itoa(i) + "."
		f.Set(pfx+"name", sp.Name)
		f.Set(pfx+"model", sp.Model)
		for k, v := range sp.Params {
			f.SetFloat(pfx+"param."+k, v)
		}
	}
	f.SetInt("timeout_ms", int(timeoutMS))
	f.SetInt("workers", workers)
	if noCache {
		f.SetInt("no_cache", 1)
	}
	if leaseTTLMS > 0 {
		f.SetInt("lease_ttl_ms", int(leaseTTLMS))
	}
	return f.Key()
}

// submit validates the specs, registers the job and enqueues it, answering
// 202 with the queued status — or the appropriate rejection. A request
// carrying an Idempotency-Key header is deduplicated: resubmitting the same
// body under the same key answers 200 with the existing job's status (however
// far along it is) instead of queueing a duplicate, so clients can blindly
// retry a submission whose response was lost. The key→job mapping survives
// restarts through the journal header.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, kind string, specs []PointSpec, timeoutMS int64, workers int, noCache bool, leaseTTLMS int64, compose *ComposeRequest) {
	m := serveMetrics.Get()
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = DefaultTenant
	} else if !validTenant(tenant) {
		m.rejected.With("bad_request").Inc()
		writeErr(w, http.StatusBadRequest, "invalid %s header (want [A-Za-z0-9._-]{1,64})", TenantHeader)
		return
	}
	// The quota-check fault point sits in front of admission: ModeError
	// rejects as if the tenant were over quota, ModeDelay slows the path.
	if err := faultinject.Fire(faultinject.ServeQuotaCheck); err != nil {
		m.rejected.With("tenant_rate").Inc()
		m.tenantRejected.With(tenant).Inc()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "tenant %q over submit quota: %v", tenant, err)
		return
	}
	for i, sp := range specs {
		if err := sp.validate(); err != nil {
			m.rejected.With("bad_request").Inc()
			writeErr(w, http.StatusBadRequest, "point %d: %v", i, err)
			return
		}
	}

	idemKey := r.Header.Get("Idempotency-Key")
	var idemFP string
	if idemKey != "" {
		idemFP = idemFingerprint(kind, specs, timeoutMS, workers, noCache, leaseTTLMS, compose)
		s.mu.Lock()
		if ent, ok := s.idem[idemKey]; ok {
			prior := s.jobs[ent.id]
			s.mu.Unlock()
			if ent.fp != idemFP {
				m.rejected.With("idem_mismatch").Inc()
				writeErr(w, http.StatusConflict, "Idempotency-Key %q was used with a different request body", idemKey)
				return
			}
			if prior == nil {
				// The job aged out of retention; treat the key as spent.
				m.rejected.With("idem_mismatch").Inc()
				writeErr(w, http.StatusConflict, "Idempotency-Key %q refers to an evicted job", idemKey)
				return
			}
			m.idemHits.Inc()
			w.Header().Set("Idempotent-Replay", "true")
			writeJSON(w, http.StatusOK, prior.status(false))
			return
		}
		s.mu.Unlock()
	}

	// Tenant admission: charge the token bucket and claim an in-flight slot
	// before the job touches the journal or the queue. Downstream rejections
	// (queue full, draining, idempotency race) roll the charge back.
	if reason, retryAfter := s.tenants.admit(tenant); reason != "" {
		m.rejected.With(reason).Inc()
		m.tenantRejected.With(tenant).Inc()
		secs := int64(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		what := "submit-rate"
		if reason == "tenant_inflight" {
			what = "in-flight"
		}
		writeErr(w, http.StatusTooManyRequests, "tenant %q over its %s quota", tenant, what)
		return
	}

	// The submit's traceparent header roots the job in the caller's
	// distributed trace (pnclient injects it; the coordinator's lease
	// dispatches carry the attempt span). Absent or malformed, the job
	// starts a fresh trace of its own.
	traceCtx, hasTP := obs.ParseTraceparent(r.Header.Get("Traceparent"))
	if !hasTP {
		traceCtx = obs.SpanContext{Trace: obs.NewTraceID()}
	}

	tok, cancel := budget.WithCancel(s.root)
	j := &job{
		kind:         kind,
		tenant:       tenant,
		specs:        specs,
		compose:      compose,
		jobTimeout:   time.Duration(timeoutMS) * time.Millisecond,
		sweepWorkers: workers,
		noCache:      noCache,
		leaseTTL:     time.Duration(leaseTTLMS) * time.Millisecond,
		tok:          tok,
		cancel:       cancel,
		events:       newEventLog(),
		idem:         idemKey,
		traceCtx:     traceCtx,
		state:        StateQueued,
		summaries:    make([]PointSummary, len(specs)),
	}
	if compose != nil {
		// Compose legs feed buildConfig positionally; keep them index-ordered
		// whatever order they complete in.
		j.legs = make([]sweep.PointResult, len(specs))
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		s.tenants.unadmit(tenant)
		m.rejected.With("draining").Inc()
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if idemKey != "" {
		// Racing submissions under the same key: first past this check wins;
		// re-check under the lock we dropped above.
		if ent, ok := s.idem[idemKey]; ok {
			prior := s.jobs[ent.id]
			s.mu.Unlock()
			cancel()
			s.tenants.unadmit(tenant)
			if ent.fp != idemFP || prior == nil {
				m.rejected.With("idem_mismatch").Inc()
				writeErr(w, http.StatusConflict, "Idempotency-Key %q was used with a different request body", idemKey)
				return
			}
			m.idemHits.Inc()
			w.Header().Set("Idempotent-Replay", "true")
			writeJSON(w, http.StatusOK, prior.status(false))
			return
		}
	}
	s.seq++
	j.id = "j" + strconv.FormatInt(s.seq, 10)
	// The header is fsync'd before the 202 goes out: once the client hears
	// "accepted", the job survives a crash. The queued event rides the same
	// handle. Both land before the queue send, so everything a worker reads
	// (id, the queued event) is in place before the job becomes visible.
	j.jl = s.journal.create(jrecord{
		ID: j.id, Kind: kind, Tenant: tenant, Specs: specs, TimeoutMS: timeoutMS,
		Workers: workers, NoCache: noCache, Idem: idemKey, IdemFP: idemFP,
		LeaseTTLMS: leaseTTLMS, Trace: traceCtx.Traceparent(), Compose: compose,
	})
	j.trace = newJobTrace(traceCtx.Trace, tracePath(s.cfg.JournalDir, j.id))
	// The spill file is opened (and its header fsync'd) while the job is
	// still invisible: every reader that can find the job sees the same rf
	// pointer for its whole life. A nil rf (store unavailable, disk trouble)
	// degrades this job to summary-only service.
	j.rf = s.results.open(j.id, len(specs))
	j.emit(Event{Type: "state", State: StateQueued}, false)
	// The gauge rises before the enqueue so the worker's decrement (not under
	// s.mu) can never be observed ahead of it leaving the depth negative
	// forever; a momentary scrape race is the worst case.
	m.queueDepth.Add(1)
	if err := s.sched.submit(j, s.tenants.weight(tenant)); err != nil {
		s.mu.Unlock()
		cancel()
		s.tenants.unadmit(tenant)
		j.jl.discard() // an unqueued job must not be resurrected on restart
		j.trace.discard(tracePath(s.cfg.JournalDir, j.id))
		j.rf.closeFile()
		s.results.remove(j.id)
		m.queueDepth.Add(-1)
		m.rejected.With("queue_full").Inc()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "job queue is full (%d)", s.cfg.Queue)
		return
	}
	if idemKey != "" {
		s.idem[idemKey] = idemEntry{id: j.id, fp: idemFP}
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.mu.Unlock()

	// The lease clock starts at acceptance: a leased job stuck in the queue
	// of a wedged worker expires like any other, freeing the coordinator to
	// reassign instead of waiting on a pickup that never comes.
	j.armLease()
	m.submitted.With(kind).Inc()
	m.tenantJobs.With(tenant).Inc()
	writeJSON(w, http.StatusAccepted, j.status(false))
}

// evictLocked drops the oldest terminal jobs beyond the retention bound.
// Callers hold s.mu.
func (s *Server) evictLocked() {
	for len(s.jobs) > s.cfg.Retain {
		evicted := false
		for i, id := range s.order {
			j := s.jobs[id]
			if j == nil {
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
			j.mu.Lock()
			terminal := j.state == StateDone || j.state == StateFailed || j.state == StateCanceled
			j.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				if j.idem != "" {
					delete(s.idem, j.idem)
				}
				s.journal.remove(id)
				j.trace.discard(tracePath(s.cfg.JournalDir, id))
				j.rf.closeFile()
				s.results.remove(id)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything live: keep, even over the bound
		}
	}
}

func (s *Server) lookup(r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status(r.URL.Query().Get("full") == "1"))
}

// handleResults serves a page of loss-free point results straight off the
// job's spill file: ?offset= is the first point index, ?limit= the page
// width (default 256, capped at 4096). Pages work on running jobs (frames
// appear as points complete; never-spilled indices are skipped) and on
// journal-recovered ones — each returned element is the point's exact codec
// bytes, so a paginating client reassembles the same payload ?full=1 used
// to ship in one body.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	q := r.URL.Query()
	offset, limit := 0, 256
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad offset %q", v)
			return
		}
		offset = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	if limit > 4096 {
		limit = 4096
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	spilled, _, degraded := j.rf.snapshot()
	page := ResultsPage{
		JobID:    j.id,
		State:    state,
		Total:    len(j.specs),
		Spilled:  spilled,
		Offset:   offset,
		Degraded: degraded,
		Results:  []json.RawMessage{},
	}
	frames, err := j.rf.page(offset, limit)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "reading results: %v", err)
		return
	}
	if frames != nil {
		page.Results = frames
	}
	if end := offset + limit; end < len(j.specs) {
		page.NextOffset = &end
	}
	serveMetrics.Get().resultReads.With("page").Inc()
	writeJSON(w, http.StatusOK, page)
}

// handleResultsJSONL streams every spilled result as one codec line per
// point, in index order — the loss-free bulk download that replaces pulling
// a giant ?full=1 body, and the first loss-free retrieval path that works on
// journal-recovered jobs. The stream is a snapshot: a running job yields the
// points spilled so far.
func (s *Server) handleResultsJSONL(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	if j.rf == nil {
		writeErr(w, http.StatusNotFound, "no loss-free results for this job (result store unavailable)")
		return
	}
	serveMetrics.Get().resultReads.With("jsonl").Inc()
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	_ = j.rf.writeJSONL(w) // mid-stream errors can only truncate; the client sees a short read
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.status(false))
}

// handleRenew rewinds a leased job's TTL timer (see SweepRequest.LeaseTTLMS)
// and answers with the current status — the progress counters double as the
// heartbeat payload. Renewing an unleased or terminal job is a harmless
// no-op, so coordinators can renew blindly on a timer.
func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	j.armLease()
	serveMetrics.Get().leaseRenewals.Inc()
	writeJSON(w, http.StatusOK, j.status(false))
}

// handleTrace serves the job's merged distributed timeline: this node's own
// spans plus whatever has been ingested from workers, with per-stage and
// per-process latency rollups. ?format=jsonl streams the raw events one JSON
// line each — the journal-file format, pipe-friendly.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	evs, dropped := j.trace.snapshot()
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/jsonl")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		for _, ev := range evs {
			if enc.Encode(ev) != nil {
				return
			}
		}
		return
	}
	writeJSON(w, http.StatusOK, renderTrace(j.id, j.traceCtx.Trace, evs, dropped))
}

// handleClusterStatus serves the live fleet view. Plain nodes report their
// own queue/job numbers; a coordinator (Config.ClusterStatus installed) adds
// per-worker health/breaker state and the in-flight lease table.
func (s *Server) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	running := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == StateRunning {
			running++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	st := ClusterStatus{Draining: draining, QueueDepth: s.sched.depth(), RunningJobs: running}
	if s.cfg.ClusterStatus != nil {
		st.Coordinator = true
		st.Workers, st.Leases = s.cfg.ClusterStatus()
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	names := osc.Models()
	out := make([]ModelInfo, 0, len(names))
	for _, n := range names {
		mi := ModelInfo{Name: n, Defaults: osc.DefaultParams(n)}
		// Noise-source labels under default parameters — what a compose
		// leg's "sources" selector accepts against this model.
		if m, err := osc.Build(n, nil); err == nil {
			mi.NoiseSources = m.Sys.NoiseLabels()
			mi.NumNoise = m.Sys.NumNoise()
		}
		out = append(out, mi)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealth is liveness: 200 as long as the process answers HTTP at all,
// draining or not. Orchestrators restart on liveness failure, so this must
// never report unhealthy for conditions a restart would not fix.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	running := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == StateRunning {
			running++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Health{OK: true, Draining: draining, Queued: s.sched.depth(), Running: running})
}

// handleReady is readiness: 503 while draining (stop sending traffic here)
// and before journal replay completes (recovered jobs are still being
// restored, so status lookups could 404 for jobs that do exist). Load
// balancers route on this; liveness stays green the whole time.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ready, draining := s.ready, s.draining
	s.mu.Unlock()
	if !ready || draining {
		writeJSON(w, http.StatusServiceUnavailable, Health{OK: false, Draining: draining, Queued: s.sched.depth()})
		return
	}
	writeJSON(w, http.StatusOK, Health{OK: true, Queued: s.sched.depth()})
}

// handleEvents streams the job's event log as Server-Sent Events: full
// history replay (resumable from the Last-Event-ID header), then live tail
// until the job reaches a terminal state or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	var after int64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			after = n
		}
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for {
		evs, wait, done := j.events.since(after)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
			after = ev.Seq
		}
		flusher.Flush()
		if done && len(evs) == 0 {
			return
		}
		if done {
			continue // drain whatever arrived with the close
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

// worker pulls jobs off the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.sched.next()
		if j == nil {
			return // scheduler closed and drained
		}
		s.runUnit(j)
	}
}

// runUnit executes one scheduler grant: the whole body for interactive and
// runner-delegated jobs, one LaneGrant chunk for a local batch sweep. A
// chunked job that is not yet terminal re-enters its lane — that requeue is
// the preemption point where a waiting interactive job (or another tenant)
// can take the worker.
func (s *Server) runUnit(j *job) {
	if j.exec == nil {
		s.beginJob(j)
	}
	s.stepJob(j)
	if j.exec.state == "" {
		s.sched.requeue(j)
		return
	}
	s.finishJob(j)
}

// beginJob runs once per job, on its first grant: state transition, root
// span, the composed budget token, and the per-point completion hook that
// spills every loss-free result to the job's file the moment it lands.
func (s *Server) beginJob(j *job) {
	m := serveMetrics.Get()
	m.queueDepth.Add(-1)
	m.inflight.Add(1)
	// The root span joins the submit's trace (remote parent = the client's or
	// coordinator's span) and emits both into the job's own trace buffer and,
	// when process-wide tracing is on, the global emitter.
	span := obs.StartSpanIn(obs.Tee(j.trace, obs.CurrentEmitter()), j.traceCtx, "serve.job")
	span.SetAttr("id", j.id)
	span.SetAttr("kind", j.kind)
	span.SetAttr("points", len(j.specs))
	j.setState(StateRunning)

	jtok := j.tok
	if j.jobTimeout > 0 {
		jtok = budget.WithTimeout(jtok, j.jobTimeout)
	}
	if s.cfg.MaxJobWall > 0 {
		jtok = budget.WithTimeout(jtok, s.cfg.MaxJobWall)
	}
	ex := &jobExec{start: time.Now(), span: span, jtok: jtok}
	ex.onPt = func(r sweep.PointResult) {
		// Spill before summarising: once the summary is visible the loss-free
		// payload must already be durable-ish (same ordering as emit-then-ack
		// in the journal). Append failures degrade the file, never the job.
		_ = j.rf.appendResult(&r)
		sum := summarize(&r)
		j.mu.Lock()
		if j.legs != nil && r.Index >= 0 && r.Index < len(j.legs) {
			j.legs[r.Index] = r // compose legs feed the composition step
		}
		j.summaries[r.Index] = sum
		j.doneN++
		if r.Cached {
			j.cachedN++
		}
		if !r.OK() {
			j.failedN++
		}
		j.mu.Unlock()
		j.emit(Event{Type: "point", Point: &sum}, false)
	}
	j.exec = ex
}

// stepJob advances the job by one grant. It records the terminal outcome on
// j.exec when the job is finished (or failed) and leaves exec.state empty
// when a local batch sweep still has chunks to run.
func (s *Server) stepJob(j *job) {
	ex := j.exec
	if len(j.specs) > 0 && s.cfg.Runner != nil && ex.next == 0 {
		ex.next = len(j.specs)
		if state, err := s.runViaRunner(j); err != nil {
			ex.state, ex.err = state, err
			return
		}
	}
	if len(j.specs) > 0 && s.cfg.Runner == nil {
		if ex.points == nil {
			pts := make([]sweep.Point, len(j.specs))
			for i, sp := range j.specs {
				pt, err := sp.Resolve(ex.jtok)
				if err != nil {
					ex.state, ex.err = classify(err), fmt.Errorf("point %d: %w", i, err)
					return
				}
				pts[i] = pt
			}
			ex.points = pts
			ex.store = s.cfg.Cache
			if j.noCache {
				ex.store = nil
			}
		}
		for ex.next < len(ex.points) {
			a, b := ex.next, ex.next+s.cfg.LaneGrant
			if j.kind != "sweep" || ex.jtok.Err() != nil || b > len(ex.points) {
				// Interactive jobs run whole (their point counts are small);
				// a dead budget drains the remainder in one pass — the engine
				// delivers every never-started point as skipped, so the
				// terminal job still accounts for all of them.
				b = len(ex.points)
			}
			s.runChunk(j, a, b)
			ex.next = b
			if ex.next < len(ex.points) && ex.jtok.Err() == nil {
				return // yield the worker; the scheduler picks who runs next
			}
		}
	}
	// A tripped job token is a job-level outcome (cancel endpoint, shutdown,
	// or the job's own deadline); per-point failures under a live token are
	// data, not a job failure.
	if err := ex.jtok.Err(); err != nil {
		ex.state, ex.err = classify(err), err
		return
	}
	if j.compose != nil {
		if state, err := s.composeJob(j, ex.jtok, ex.span); err != nil {
			ex.state, ex.err = state, err
			return
		}
	}
	ex.state = StateDone
}

// runChunk runs points [a, b) through the in-process sweep engine. The engine
// sees a zero-based sub-slice; results are re-indexed to job coordinates
// before the completion hook. DiscardResults keeps the engine from returning
// an O(chunk) slice nobody reads — the spill file is the system of record.
func (s *Server) runChunk(j *job, a, b int) {
	ex := j.exec
	sweep.Run(ex.points[a:b], &sweep.Config{
		Workers:        j.sweepWorkers,
		Budget:         ex.jtok,
		Cache:          ex.store,
		Span:           ex.span,
		FlightRecorder: s.cfg.FlightRecorder,
		DiscardResults: true,
		OnPoint: func(r sweep.PointResult) {
			r.Index += a
			ex.onPt(r)
		},
	})
}

// runViaRunner executes the job through the configured SweepRunner (a
// cluster coordinator, in practice) and returns ("", nil) on success.
// Per-point progress arrives through OnSummary — possibly concurrently from
// several worker streams — and is folded into the job's counters and SSE
// stream exactly like the in-process path's hook; the loss-free payloads
// arrive through OnResult and go straight to the spill file. Both are
// trusted to arrive at most once per index, but an out-of-range index is
// dropped rather than corrupting state.
func (s *Server) runViaRunner(j *job) (string, error) {
	ex := j.exec
	runErr := s.cfg.Runner.RunSweep(RunnerRequest{
		JobID:       j.id,
		Kind:        j.kind,
		Specs:       j.specs,
		Tok:         ex.jtok,
		Workers:     j.sweepWorkers,
		NoCache:     j.noCache,
		Span:        ex.span,
		IngestTrace: j.trace.ingest,
		OnResult: func(r sweep.PointResult) {
			if r.Index < 0 || r.Index >= len(j.specs) {
				return
			}
			_ = j.rf.appendResult(&r)
			if j.legs != nil {
				j.mu.Lock()
				j.legs[r.Index] = r
				j.mu.Unlock()
			}
		},
		OnSummary: func(sum PointSummary) {
			if sum.Index < 0 || sum.Index >= len(j.specs) {
				return
			}
			j.mu.Lock()
			j.summaries[sum.Index] = sum
			j.doneN++
			if sum.Cached {
				j.cachedN++
			}
			if !sum.OK {
				j.failedN++
			}
			j.mu.Unlock()
			j.emit(Event{Type: "point", Point: &sum}, false)
		},
	})

	if runErr != nil {
		return classify(runErr), runErr
	}
	if err := ex.jtok.Err(); err != nil {
		return classify(err), err
	}
	return "", nil
}

// finishJob settles the terminal state recorded by stepJob: the fsync'd +
// rotated terminal event, sealed spill file, released tenant slot, metrics
// and the closed trace.
func (s *Server) finishJob(j *job) {
	m := serveMetrics.Get()
	ex := j.exec
	state, jobErr := ex.state, ex.err
	j.stopLease()
	// Free the tenant's in-flight slot before the terminal state becomes
	// visible: a client that polls its job to completion and immediately
	// resubmits must never bounce off its own finishing job's slot.
	s.tenants.release(j.tenant)

	j.mu.Lock()
	j.state = state
	j.err = jobErr
	j.wall = time.Since(ex.start)
	j.mu.Unlock()
	// The terminal event carries the job-level error and is fsync'd + rotated
	// (.wal → .jsonl) before subscribers see the stream close: a crash after
	// this line replays as a finished job, never as a re-run.
	j.emit(Event{Type: "state", State: state, Error: sweep.EncodeError(jobErr)}, true)
	j.events.close()
	j.cancel() // release the token's forwarding goroutine
	j.rf.seal()

	m.inflight.Add(-1)
	m.jobs.With(state).Inc()
	m.jobSeconds.Observe(time.Since(ex.start).Seconds())
	ex.span.SetAttr("state", state)
	ex.span.EndErr(jobErr)
	// The timeline stays queryable from memory; the file handle is released
	// now that the last span has landed (eviction deletes the file later).
	j.trace.close()
}

// classify maps a job-level error to its terminal state.
func classify(err error) string {
	if errors.Is(err, budget.ErrCanceled) {
		return StateCanceled
	}
	return StateFailed
}

// recoverJobs replays the journal directory on startup. Terminal jobs come
// back queryable exactly as they finished (state, counters, summaries, event
// history for SSE replay); non-terminal jobs are re-enqueued and re-run —
// their pre-crash points are cache hits, so no completed work recomputes.
// Runs in the background: the server accepts new traffic meanwhile, and
// /readyz flips to 200 only when the whole directory is restored. A shutdown
// mid-replay aborts cleanly: unprocessed .wal files wait for the next start.
func (s *Server) recoverJobs() {
	defer s.replay.Done()
	m := serveMetrics.Get()
	// ModeDelay here widens the not-ready window deterministically; ModeError
	// is meaningless for replay and ignored.
	_ = faultinject.Fire(faultinject.ServeReplayDelay)
	for _, rj := range s.journal.replay() {
		if rj.terminal || !rj.wal {
			s.restoreTerminal(rj, m)
			continue
		}
		if !s.resumeJob(rj, m) {
			return // draining: remaining .wal files recover on the next start
		}
	}
	s.mu.Lock()
	s.ready = true
	s.mu.Unlock()
}

// restoreTerminal registers a finished job from its journal: queryable status
// and replayable (closed) event stream. When the job's spill file survived
// alongside the WAL, the loss-free results come back with it — ?full=1,
// /results pages and /results.jsonl all work across the restart; only a job
// with no spill (pre-store journals, degraded runs) is summary-only.
func (s *Server) restoreTerminal(rj recoveredJob, m *serveInstruments) {
	tok, cancel := budget.WithCancel(nil)
	cancel() // nothing will run; release the token immediately
	traceCtx := recoveredTraceCtx(rj.hdr.Trace)
	j := &job{
		id:           rj.hdr.ID,
		kind:         rj.hdr.Kind,
		tenant:       recoveredTenant(rj.hdr),
		specs:        rj.hdr.Specs,
		compose:      rj.hdr.Compose,
		jobTimeout:   time.Duration(rj.hdr.TimeoutMS) * time.Millisecond,
		sweepWorkers: rj.hdr.Workers,
		noCache:      rj.hdr.NoCache,
		tok:          tok,
		cancel:       cancel,
		events:       newEventLog(),
		idem:         rj.hdr.Idem,
		traceCtx:     traceCtx,
		state:        rj.state,
		summaries:    make([]PointSummary, len(rj.hdr.Specs)),
	}
	j.rf = s.results.openExisting(j.id, len(j.specs))
	j.rf.seal() // terminal: frozen read-only, late appends no-op
	j.trace = reopenJobTrace(traceCtx.Trace, tracePath(s.cfg.JournalDir, j.id))
	j.trace.close() // terminal: the timeline is read-only from here
	if rj.err != nil {
		j.err = rj.err
	}
	restoreProgress(j, rj.events)
	j.events.restore(rj.events)
	j.events.close()
	// A .wal holding a terminal event means the crash hit between the fsync
	// and the rename; finish the rotation it was owed.
	if rj.wal {
		if jj := s.journal.reopen(j.id); jj != nil {
			jj.mu.Lock()
			jj.rotateLocked()
			jj.mu.Unlock()
		}
	}
	s.register(j)
	m.recovered.With("terminal").Inc()
}

// resumeJob re-enqueues a non-terminal recovered job. The restored event
// history keeps its pre-crash sequence numbers (so Last-Event-ID replay spans
// the restart), then a fresh queued event marks the resumption; the re-run
// re-reports every point, completed ones as cache hits. Progress counters
// restart from zero — the re-run recounts. Returns false when the server is
// draining and the job could not be enqueued.
func (s *Server) resumeJob(rj recoveredJob, m *serveInstruments) bool {
	tok, cancel := budget.WithCancel(s.root)
	traceCtx := recoveredTraceCtx(rj.hdr.Trace)
	j := &job{
		id:           rj.hdr.ID,
		kind:         rj.hdr.Kind,
		tenant:       recoveredTenant(rj.hdr),
		specs:        rj.hdr.Specs,
		compose:      rj.hdr.Compose,
		jobTimeout:   time.Duration(rj.hdr.TimeoutMS) * time.Millisecond,
		sweepWorkers: rj.hdr.Workers,
		noCache:      rj.hdr.NoCache,
		leaseTTL:     time.Duration(rj.hdr.LeaseTTLMS) * time.Millisecond,
		tok:          tok,
		cancel:       cancel,
		events:       newEventLog(),
		jl:           s.journal.reopen(rj.hdr.ID),
		idem:         rj.hdr.Idem,
		traceCtx:     traceCtx,
		state:        StateQueued,
		summaries:    make([]PointSummary, len(rj.hdr.Specs)),
	}
	if j.compose != nil {
		j.legs = make([]sweep.PointResult, len(j.specs))
	}
	// The re-run re-reports every point (pre-crash ones as cache hits); the
	// reopened spill dedups by index, so frames that landed before the crash
	// stay exactly as first written.
	j.rf = s.results.open(j.id, len(j.specs))
	// The pre-crash timeline is reloaded and the same trace ID continues; a
	// resume marker records the restart itself — in-flight span trees died
	// unemitted with the old process, and this marker is what explains the
	// gap when reading the merged timeline.
	j.trace = reopenJobTrace(traceCtx.Trace, tracePath(s.cfg.JournalDir, j.id))
	j.trace.Emit(obs.Event{Type: "resume", Name: "serve.job.resumed", StartNS: time.Now().UnixNano()})
	j.events.restore(rj.events)
	j.emit(Event{Type: "state", State: StateQueued}, false)
	s.register(j)
	// The lease resumes with a full TTL window: the coordinator's renew loop
	// (or its own journal replay) has one whole period to find the restarted
	// worker before the job self-cancels.
	j.armLease()
	m.queueDepth.Add(1)
	if s.sched.resume(j, s.tenants.weight(j.tenant)) == nil {
		// The previous process admitted this job; re-claim its in-flight slot
		// (without charging the submit bucket) so quota accounting survives
		// the restart.
		s.tenants.restore(j.tenant)
		m.recovered.With("resumed").Inc()
		return true
	}
	// Shutting down before this job could re-enter the queue: unregister
	// and keep its .wal on disk so the next start resumes it.
	cancel()
	j.rf.closeFile()
	m.queueDepth.Add(-1)
	s.mu.Lock()
	delete(s.jobs, j.id)
	for i, id := range s.order {
		if id == j.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if j.idem != "" {
		delete(s.idem, j.idem)
	}
	s.mu.Unlock()
	return false
}

// recoveredTenant maps a journal header to its admission identity; journals
// written before tenancy existed carry no tenant and fold into the default.
func recoveredTenant(hdr jrecord) string {
	if validTenant(hdr.Tenant) {
		return hdr.Tenant
	}
	return DefaultTenant
}

// register adds a recovered job to the server's tables (including the
// idempotency map, so a client retrying its submission after the crash gets
// the recovered job back, not a duplicate).
func (s *Server) register(j *job) {
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if j.idem != "" {
		s.idem[j.idem] = idemEntry{id: j.id, fp: j.idemFP()}
	}
	s.evictLocked()
	s.mu.Unlock()
}

// idemFP recomputes the job's idempotency fingerprint from its own fields
// (recovered headers carry the key; the fingerprint is derivable).
func (j *job) idemFP() string {
	return idemFingerprint(j.kind, j.specs, int64(j.jobTimeout/time.Millisecond), j.sweepWorkers, j.noCache, int64(j.leaseTTL/time.Millisecond), j.compose)
}

// restoreProgress rebuilds a terminal job's counters and summaries from its
// journaled point events. Point delivery is at-least-once across a crash (a
// resumed job re-reports everything), so counting dedups by Point.Index with
// the last occurrence winning — it is the final incarnation's result.
func restoreProgress(j *job, evs []Event) {
	filled := make([]bool, len(j.summaries))
	for _, ev := range evs {
		if ev.Type == "compose" && ev.Compose != nil {
			j.composeSum = ev.Compose // last wins: the final incarnation's composite
			continue
		}
		if ev.Type != "point" || ev.Point == nil {
			continue
		}
		p := *ev.Point
		if p.Index < 0 || p.Index >= len(j.summaries) {
			continue
		}
		j.summaries[p.Index] = p
		filled[p.Index] = true
	}
	for i, ok := range filled {
		if !ok {
			continue
		}
		j.doneN++
		if j.summaries[i].Cached {
			j.cachedN++
		}
		if !j.summaries[i].OK {
			j.failedN++
		}
	}
}
