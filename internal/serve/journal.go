package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/sweep"
)

// The job journal is the server's write-ahead durability layer: one
// append-only JSONL file per job under Config.JournalDir. The first line is
// the job header (everything needed to re-create the job as pure data —
// kind, specs, knobs, idempotency fingerprint); every following line is one
// progress event exactly as a subscriber saw it (state transitions and
// per-point summaries, with their sequence numbers).
//
// Lifecycle on disk:
//
//	<id>.wal    active job (accepted/queued/running). Appended as the job
//	            progresses; fsync'd at the header and at terminal events,
//	            best-effort in between — a lost tail costs progress replay,
//	            never correctness, because completed points live in the
//	            content-addressed result cache.
//	<id>.jsonl  terminal job, atomically rotated (fsync + rename) from the
//	            .wal once the terminal state event is durable.
//
// On restart, replay walks the directory: .jsonl files restore queryable
// terminal jobs; .wal files restore the event history and re-enqueue the job
// — already-computed points come back as cache hits, only unfinished points
// recompute. Replay is corruption-tolerant line by line: a torn final line
// (the normal crash artifact) or a garbage line is skipped, and a file whose
// header is unreadable is quarantined to <name>.corrupt instead of wedging
// startup.
const (
	walExt  = ".wal"
	doneExt = ".jsonl"
)

// journalSchemaVersion guards the record schema like the cache's disk
// envelope: records from a different version are ignored on replay.
const journalSchemaVersion = 1

// jrecord is one JSONL line of a job journal.
type jrecord struct {
	V int    `json:"v"`
	T string `json:"t"` // "accepted" or "event"
	// Header fields (T == "accepted").
	ID         string      `json:"id,omitempty"`
	Kind       string      `json:"kind,omitempty"`
	Specs      []PointSpec `json:"specs,omitempty"`
	TimeoutMS  int64       `json:"timeout_ms,omitempty"`
	Workers    int         `json:"workers,omitempty"`
	NoCache    bool        `json:"no_cache,omitempty"`
	LeaseTTLMS int64       `json:"lease_ttl_ms,omitempty"` // lease window; resumed jobs re-arm it
	Tenant     string      `json:"tenant,omitempty"`       // admission identity; recovery restores the in-flight slot
	Idem       string      `json:"idem,omitempty"`         // client Idempotency-Key, verbatim
	IdemFP     string      `json:"idem_fp,omitempty"`      // request-body fingerprint under that key
	Trace      string      `json:"trace,omitempty"`        // traceparent at submit; restarts keep the trace ID
	// Compose is the composition request of a "compose" job; a recovered job
	// re-runs the composition after its legs resolve (as cache hits).
	Compose *ComposeRequest `json:"compose,omitempty"`
	// Event field (T == "event").
	Ev *Event `json:"ev,omitempty"`
}

// journal manages the journal directory of one Server.
type journal struct {
	dir string
}

// openJournal prepares the directory and returns the highest job sequence
// number found in existing journal file names, so the server can continue its
// ID space without colliding with recovered jobs.
func openJournal(dir string) (*journal, int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, fmt.Errorf("serve: journal dir: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: journal dir: %w", err)
	}
	var maxSeq int64
	for _, e := range ents {
		id := strings.TrimSuffix(strings.TrimSuffix(e.Name(), walExt), doneExt)
		if n, err := strconv.ParseInt(strings.TrimPrefix(id, "j"), 10, 64); err == nil && n > maxSeq {
			maxSeq = n
		}
	}
	return &journal{dir: dir}, maxSeq, nil
}

// path maps a job ID and extension to its file, rejecting path-hostile IDs
// (only the server mints IDs, but replayed headers are data).
func (jl *journal) path(id, ext string) (string, bool) {
	if id == "" || len(id) > 64 || strings.ContainsAny(id, "/\\.") {
		return "", false
	}
	return filepath.Join(jl.dir, id+ext), true
}

// jobJournal is the append handle of one job's journal file. Methods are
// serialised by mu; every write failure (real or injected) is counted and
// swallowed — durability degrades, the job itself keeps running.
type jobJournal struct {
	jl *journal
	id string

	mu        sync.Mutex
	f         *os.File
	enc       *bufio.Writer
	finalized bool
}

// create opens a fresh .wal, writes the header record and fsyncs it, so an
// accepted job survives a crash from the moment the 202 goes out. A nil
// *journal (journalling off) returns a nil handle, on which every method is a
// no-op.
func (jl *journal) create(hdr jrecord) *jobJournal {
	if jl == nil {
		return nil
	}
	m := serveMetrics.Get()
	p, ok := jl.path(hdr.ID, walExt)
	if !ok {
		m.journalErrors.Inc()
		return nil
	}
	if faultinject.Fire(faultinject.ServeJournalWrite) != nil {
		m.journalErrors.Inc()
		return nil
	}
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		m.journalErrors.Inc()
		return nil
	}
	hdr.V = journalSchemaVersion
	hdr.T = "accepted"
	jj := &jobJournal{jl: jl, id: hdr.ID, f: f, enc: bufio.NewWriter(f)}
	if !jj.writeLocked(hdr, true) {
		_ = f.Close()
		return nil
	}
	return jj
}

// reopen continues an existing .wal of a recovered job in append mode.
func (jl *journal) reopen(id string) *jobJournal {
	if jl == nil {
		return nil
	}
	p, ok := jl.path(id, walExt)
	if !ok {
		return nil
	}
	f, err := os.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		serveMetrics.Get().journalErrors.Inc()
		return nil
	}
	return &jobJournal{jl: jl, id: id, f: f, enc: bufio.NewWriter(f)}
}

// event appends one progress event. terminal events are fsync'd and rotate
// the file to its .jsonl resting name; intermediate events are buffered
// best-effort (an fsync per point would put a disk round-trip on the sweep
// hot path for durability the result cache already provides).
func (jj *jobJournal) event(ev Event, terminal bool) {
	if jj == nil {
		return
	}
	jj.mu.Lock()
	defer jj.mu.Unlock()
	if jj.finalized || jj.f == nil {
		return
	}
	if faultinject.Fire(faultinject.ServeJournalWrite) != nil {
		serveMetrics.Get().journalErrors.Inc()
		return
	}
	if !jj.writeLocked(jrecord{V: journalSchemaVersion, T: "event", Ev: &ev}, terminal) {
		return
	}
	if terminal {
		jj.rotateLocked()
	}
}

// writeLocked marshals and appends one record, optionally flushing it to
// stable storage. Callers hold jj.mu (or own jj exclusively).
func (jj *jobJournal) writeLocked(rec jrecord, sync bool) bool {
	m := serveMetrics.Get()
	data, err := json.Marshal(rec)
	if err != nil {
		m.journalErrors.Inc()
		return false
	}
	if _, err := jj.enc.Write(append(data, '\n')); err != nil {
		m.journalErrors.Inc()
		return false
	}
	if sync {
		if err := jj.enc.Flush(); err != nil {
			m.journalErrors.Inc()
			return false
		}
		if err := jj.f.Sync(); err != nil {
			m.journalErrors.Inc()
			return false
		}
	}
	m.journalWrites.Inc()
	return true
}

// rotateLocked finalizes the journal: flush, fsync, close, and atomically
// rename <id>.wal → <id>.jsonl, then fsync the directory so the rotation
// itself is durable. After rotation the handle is dead.
func (jj *jobJournal) rotateLocked() {
	m := serveMetrics.Get()
	jj.finalized = true
	_ = jj.enc.Flush()
	_ = jj.f.Sync()
	_ = jj.f.Close()
	jj.f = nil
	src, ok1 := jj.jl.path(jj.id, walExt)
	dst, ok2 := jj.jl.path(jj.id, doneExt)
	if !ok1 || !ok2 {
		m.journalErrors.Inc()
		return
	}
	if err := os.Rename(src, dst); err != nil {
		m.journalErrors.Inc()
		return
	}
	if d, err := os.Open(jj.jl.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// discard closes the handle and deletes the files — for a job journaled but
// never enqueued (queue-full rejection lands after the header write).
func (jj *jobJournal) discard() {
	if jj == nil {
		return
	}
	jj.mu.Lock()
	jj.finalized = true
	if jj.f != nil {
		_ = jj.f.Close()
		jj.f = nil
	}
	jj.mu.Unlock()
	jj.jl.remove(jj.id)
}

// remove deletes a job's journal files (called when the retention bound
// evicts a terminal job, so the directory does not grow without bound).
func (jl *journal) remove(id string) {
	if jl == nil {
		return
	}
	for _, ext := range []string{walExt, doneExt} {
		if p, ok := jl.path(id, ext); ok {
			if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
				serveMetrics.Get().journalErrors.Inc()
			}
		}
	}
}

// recoveredJob is one job reconstructed from its journal during replay.
type recoveredJob struct {
	hdr      jrecord
	events   []Event
	state    string             // last journaled state (StateQueued when none)
	err      *sweep.RemoteError // terminal error, when journaled
	terminal bool
	wal      bool // true when read from an active .wal (may need re-enqueue)
}

// replay reads every journal file in the directory and reconstructs its job.
// Corrupt lines are skipped (counted); files without a usable header are
// quarantined. The returned jobs are sorted by numeric ID so re-enqueue order
// matches original submission order.
func (jl *journal) replay() []recoveredJob {
	if jl == nil {
		return nil
	}
	m := serveMetrics.Get()
	ents, err := os.ReadDir(jl.dir)
	if err != nil {
		m.journalErrors.Inc()
		return nil
	}
	var out []recoveredJob
	for _, e := range ents {
		name := e.Name()
		var wal bool
		switch {
		case strings.HasSuffix(name, walExt):
			wal = true
		case strings.HasSuffix(name, doneExt):
		default:
			continue
		}
		rj, ok := jl.replayFile(filepath.Join(jl.dir, name), wal)
		if !ok {
			// No usable header: quarantine so the next start is clean and the
			// operator can inspect the file.
			m.replayCorrupt.Inc()
			_ = os.Rename(filepath.Join(jl.dir, name), filepath.Join(jl.dir, name+".corrupt"))
			continue
		}
		out = append(out, rj)
	}
	sortRecovered(out)
	return out
}

// replayFile parses one journal file. It returns ok=false only when the
// header is unusable; event-line corruption is tolerated record by record.
func (jl *journal) replayFile(path string, wal bool) (recoveredJob, bool) {
	m := serveMetrics.Get()
	f, err := os.Open(path)
	if err != nil {
		m.journalErrors.Inc()
		return recoveredJob{}, false
	}
	defer f.Close()

	rj := recoveredJob{state: StateQueued, wal: wal}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec jrecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.V != journalSchemaVersion {
			m.replayCorrupt.Inc()
			if first {
				return recoveredJob{}, false
			}
			continue // torn or garbage line: skip, keep what parsed
		}
		if first {
			if rec.T != "accepted" || rec.ID == "" || (len(rec.Specs) == 0 && rec.Compose == nil) {
				return recoveredJob{}, false
			}
			rj.hdr = rec
			first = false
			continue
		}
		if rec.T != "event" || rec.Ev == nil {
			m.replayCorrupt.Inc()
			continue
		}
		// Sequence numbers must stay a contiguous 1..n prefix for SSE replay;
		// a gap means lost lines, so truncate the restored history there.
		if rec.Ev.Seq != int64(len(rj.events))+1 {
			m.replayCorrupt.Inc()
			continue
		}
		rj.events = append(rj.events, *rec.Ev)
		if rec.Ev.Type == "state" {
			rj.state = rec.Ev.State
			if rec.Ev.State == StateDone || rec.Ev.State == StateFailed || rec.Ev.State == StateCanceled {
				rj.terminal = true
				rj.err = rec.Ev.Error
			}
		}
	}
	if first {
		return recoveredJob{}, false // empty or header-only-corrupt file
	}
	return rj, true
}

// sortRecovered orders jobs by their numeric ID (j1, j2, ...) so recovery
// re-enqueues in original submission order; non-numeric IDs sort last,
// lexicographically.
func sortRecovered(jobs []recoveredJob) {
	num := func(id string) int64 {
		n, err := strconv.ParseInt(strings.TrimPrefix(id, "j"), 10, 64)
		if err != nil {
			return 1<<63 - 1
		}
		return n
	}
	for i := 1; i < len(jobs); i++ {
		for j := i; j > 0; j-- {
			a, b := jobs[j-1], jobs[j]
			if num(a.hdr.ID) < num(b.hdr.ID) || (num(a.hdr.ID) == num(b.hdr.ID) && a.hdr.ID <= b.hdr.ID) {
				break
			}
			jobs[j-1], jobs[j] = b, a
		}
	}
}
