package serve

import "repro/internal/obs"

// serveInstruments are the job-server metrics: submissions and rejections by
// kind/reason, terminal job states, live queue and in-flight gauges, and the
// job-latency distribution.
type serveInstruments struct {
	submitted     *obs.CounterVec // pn_serve_submitted_total{kind}
	jobs          *obs.CounterVec // pn_serve_jobs_total{state}
	rejected      *obs.CounterVec // pn_serve_rejected_total{reason}
	queueDepth    *obs.Gauge      // pn_serve_queue_depth
	inflight      *obs.Gauge      // pn_serve_jobs_inflight
	jobSeconds    *obs.Histogram  // pn_serve_job_seconds
	idemHits      *obs.Counter    // pn_serve_idempotent_replays_total
	journalWrites *obs.Counter    // pn_serve_journal_writes_total
	journalErrors *obs.Counter    // pn_serve_journal_write_errors_total
	replayCorrupt *obs.Counter    // pn_serve_journal_corrupt_records_total
	recovered     *obs.CounterVec // pn_serve_jobs_recovered_total{outcome}
	leaseRenewals *obs.Counter    // pn_serve_lease_renewals_total
	leaseExpired  *obs.Counter    // pn_serve_lease_expirations_total
	traceSpans    *obs.Counter    // pn_trace_spans_total
	traceIngested *obs.Counter    // pn_trace_ingested_total
	traceDropped  *obs.Counter    // pn_trace_dropped_total

	resultSpilled  *obs.Counter    // pn_serve_results_spilled_total
	resultBytes    *obs.Counter    // pn_serve_results_bytes_total
	resultErrors   *obs.Counter    // pn_serve_results_errors_total
	resultDegraded *obs.Counter    // pn_serve_results_degraded_total
	resultReads    *obs.CounterVec // pn_serve_results_reads_total{kind}
	tenantJobs     *obs.CounterVec // pn_serve_tenant_jobs_total{tenant}
	tenantRejected *obs.CounterVec // pn_serve_tenant_rejected_total{tenant}
	tenantGrants   *obs.CounterVec // pn_serve_tenant_grants_total{tenant}
}

var serveMetrics = obs.NewView(func(r *obs.Registry) *serveInstruments {
	return &serveInstruments{
		submitted:     r.CounterVec("pn_serve_submitted_total", "Jobs accepted onto the queue, by kind (characterise, sweep, compose).", "kind"),
		jobs:          r.CounterVec("pn_serve_jobs_total", "Jobs finished, by terminal state (done, failed, canceled).", "state"),
		rejected:      r.CounterVec("pn_serve_rejected_total", "Submissions rejected before queueing, by reason (queue_full, draining, too_large, bad_request, idem_mismatch).", "reason"),
		queueDepth:    r.Gauge("pn_serve_queue_depth", "Jobs accepted but not yet picked up by a worker."),
		inflight:      r.Gauge("pn_serve_jobs_inflight", "Jobs currently running on a worker."),
		jobSeconds:    r.Histogram("pn_serve_job_seconds", "Wall-clock time per job from worker pickup to terminal state.", obs.ExpBuckets(0.001, 4, 12)),
		idemHits:      r.Counter("pn_serve_idempotent_replays_total", "Submissions answered with an existing job via Idempotency-Key dedup."),
		journalWrites: r.Counter("pn_serve_journal_writes_total", "Records appended to job journals."),
		journalErrors: r.Counter("pn_serve_journal_write_errors_total", "Journal writes dropped on error (real or injected); the job continues, durability degrades."),
		replayCorrupt: r.Counter("pn_serve_journal_corrupt_records_total", "Journal lines (or whole files) skipped as corrupt during replay."),
		recovered:     r.CounterVec("pn_serve_jobs_recovered_total", "Jobs reconstructed from the journal at startup, by outcome (resumed, terminal).", "outcome"),
		leaseRenewals: r.Counter("pn_serve_lease_renewals_total", "Lease renewals received on /v1/jobs/{id}/renew."),
		leaseExpired:  r.Counter("pn_serve_lease_expirations_total", "Leased jobs self-cancelled because no renewal arrived within the TTL."),
		traceSpans:    r.Counter("pn_trace_spans_total", "Span events recorded into job traces by this process."),
		traceIngested: r.Counter("pn_trace_ingested_total", "Span events ingested into job traces from other processes (coordinator trace pulls)."),
		traceDropped:  r.Counter("pn_trace_dropped_total", "Span events dropped because a job's trace buffer was full."),

		resultSpilled:  r.Counter("pn_serve_results_spilled_total", "Point-result frames appended to spill files."),
		resultBytes:    r.Counter("pn_serve_results_bytes_total", "Bytes appended to result spill files (frame headers included)."),
		resultErrors:   r.Counter("pn_serve_results_errors_total", "Result-store I/O failures (real or injected), reads and writes."),
		resultDegraded: r.Counter("pn_serve_results_degraded_total", "Jobs degraded to summary-only service because their spill file failed."),
		resultReads:    r.CounterVec("pn_serve_results_reads_total", "Result retrievals served from spill files, by kind (page, jsonl, full).", "kind"),
		tenantJobs:     r.CounterVec("pn_serve_tenant_jobs_total", "Jobs accepted, by tenant.", "tenant"),
		tenantRejected: r.CounterVec("pn_serve_tenant_rejected_total", "Submissions rejected by tenant admission (rate or in-flight quota), by tenant.", "tenant"),
		tenantGrants:   r.CounterVec("pn_serve_tenant_grants_total", "Scheduler lane grants (one per job pickup or batch chunk), by tenant.", "tenant"),
	}
})
