package serve

import (
	"errors"
	"sync"
)

// The scheduler replaces the old FIFO job channel with two priority lanes and
// weighted-fair queueing across tenants, and it is what makes a 10⁴-point
// batch sweep unable to starve an interactive request:
//
//   - Lane 0 (interactive) holds characterise and compose jobs; lane 1
//     (batch) holds sweeps. Workers always drain lane 0 first — strict
//     priority, safe because interactive jobs are short by construction.
//   - Within a lane, each tenant has a FIFO of grants and a virtual time
//     that advances by 1/weight per grant taken; the tenant with the lowest
//     virtual time goes next. A tenant submitting ten jobs against a
//     tenant submitting one alternates 1:1 (at equal weight), not 10:1.
//   - Local batch sweeps do not occupy a worker start-to-finish: runUnit
//     executes one chunk of Config.LaneGrant points, then the job re-enters
//     its lane and the worker picks the highest-priority grant again. A
//     queued interactive job therefore waits at most one chunk (plus
//     in-flight attempts), whatever the batch backlog — preemption at
//     lane-grant granularity without killing any work.
//
// The queue bound (Config.Queue) counts jobs that have never been granted a
// worker, exactly the old channel-capacity semantics; a batch job between
// chunks has started and does not count against intake.

const (
	laneInteractive = 0
	laneBatch       = 1
)

// laneFor classifies a job. Compose jobs are interactive even though they
// run legs through the sweep engine: their leg counts are small and a PLL
// composition is the latency-sensitive kind of request.
func laneFor(j *job) int {
	if j.kind == "sweep" {
		return laneBatch
	}
	return laneInteractive
}

// tenantLane is one tenant's queue within one lane.
type tenantLane struct {
	jobs   []*job  // FIFO of jobs owed a grant
	vtime  float64 // virtual time: grants taken / weight
	weight float64
}

var errSchedClosed = errors.New("serve: scheduler closed")
var errSchedFull = errors.New("serve: queue full")

// sched is the two-lane weighted-fair scheduler. All fields are guarded by
// mu; workers block in next on cond.
type sched struct {
	mu     sync.Mutex
	cond   *sync.Cond
	lanes  [2]map[string]*tenantLane
	closed bool
	queued int // jobs never yet granted (the intake bound)
	bound  int
}

func newSched(bound int) *sched {
	s := &sched{bound: bound}
	s.cond = sync.NewCond(&s.mu)
	s.lanes[laneInteractive] = make(map[string]*tenantLane)
	s.lanes[laneBatch] = make(map[string]*tenantLane)
	return s
}

// tenantLaneLocked materialises the tenant's queue in a lane. A tenant
// (re)entering an empty queue starts at the lane's minimum active virtual
// time: it competes fairly from now on but cannot claim credit for the time
// it was absent (which would let a bursty tenant leapfrog a steady one).
func (s *sched) tenantLaneLocked(lane int, tenant string, weight float64) *tenantLane {
	tl, ok := s.lanes[lane][tenant]
	if !ok {
		tl = &tenantLane{weight: weight}
		s.lanes[lane][tenant] = tl
	}
	if weight > 0 {
		tl.weight = weight
	}
	if len(tl.jobs) == 0 {
		if minV, ok := s.minActiveLocked(lane); ok && tl.vtime < minV {
			tl.vtime = minV
		}
	}
	return tl
}

func (s *sched) minActiveLocked(lane int) (float64, bool) {
	minV, ok := 0.0, false
	for _, tl := range s.lanes[lane] {
		if len(tl.jobs) == 0 {
			continue
		}
		if !ok || tl.vtime < minV {
			minV, ok = tl.vtime, true
		}
	}
	return minV, ok
}

// submit queues a brand-new job (never granted). Fails when the intake bound
// is reached or the scheduler has closed.
func (s *sched) submit(j *job, weight float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errSchedClosed
	}
	if s.bound > 0 && s.queued >= s.bound {
		return errSchedFull
	}
	s.queued++
	tl := s.tenantLaneLocked(laneFor(j), j.tenant, weight)
	tl.jobs = append(tl.jobs, j)
	s.cond.Signal()
	return nil
}

// resume enqueues a journal-recovered job. It respects closure (a draining
// server leaves .wal files for the next start) but not the intake bound:
// these jobs were admitted by a previous process and are owed a run even if
// the restarted server has already filled its queue with new work.
func (s *sched) resume(j *job, weight float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errSchedClosed
	}
	s.queued++
	tl := s.tenantLaneLocked(laneFor(j), j.tenant, weight)
	tl.jobs = append(tl.jobs, j)
	s.cond.Signal()
	return nil
}

// requeue re-enters a started batch job after a chunk — it does not count
// against the intake bound and is accepted even while draining (started work
// must finish). The job goes to the back of its tenant FIFO; the vtime
// charge per grant is what keeps repeated requeues fair.
func (s *sched) requeue(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tl := s.tenantLaneLocked(laneFor(j), j.tenant, 0)
	tl.jobs = append(tl.jobs, j)
	s.cond.Signal()
}

// next blocks until a grant is available and returns its job, or nil when
// the scheduler is closed and fully drained. Interactive lane first; within
// a lane, the queued tenant with the lowest virtual time.
func (s *sched) next() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for lane := range s.lanes {
			var best *tenantLane
			var bestName string
			for name, tl := range s.lanes[lane] {
				if len(tl.jobs) == 0 {
					continue
				}
				// Tie-break by name so the scan order of the map cannot make
				// scheduling non-deterministic.
				if best == nil || tl.vtime < best.vtime || (tl.vtime == best.vtime && name < bestName) {
					best, bestName = tl, name
				}
			}
			if best == nil {
				continue
			}
			j := best.jobs[0]
			best.jobs = best.jobs[1:]
			best.vtime += 1 / best.weight
			if !j.granted {
				j.granted = true
				s.queued--
			}
			serveMetrics.Get().tenantGrants.With(j.tenant).Inc()
			return j
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// depth reports jobs accepted but never yet granted a worker — the number
// the old len(queue-channel) reported.
func (s *sched) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// close stops intake and wakes every worker; next drains what remains (so
// queued jobs still reach a terminal state during shutdown) and then
// returns nil.
func (s *sched) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}
