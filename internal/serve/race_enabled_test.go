//go:build race

package serve

// raceEnabled reports whether this test binary was built with the race
// detector; heap-accounting assertions are skipped under it.
const raceEnabled = true
