package serve

import (
	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// SweepRunner replaces the in-process sweep engine for job execution. The
// default (nil Config.Runner) resolves the job's specs and runs them through
// internal/sweep on this process; a cluster coordinator installs a runner
// that leases point ranges out to worker nodes instead. Whatever the runner
// does, the server's job lifecycle — queueing, journalling, SSE progress,
// cancellation through the budget token, idempotency — is unchanged.
type SweepRunner interface {
	// RunSweep executes one job, streaming each completed point through
	// req.OnResult (the loss-free payload, spilled to disk server-side) and
	// req.OnSummary (the headline numbers) as it lands. It returns nothing
	// but the job-level outcome: per-point failures are data inside the
	// streamed results, and the server never holds an O(points) slice.
	//
	// The runner must stop promptly when req.Tok trips and should report
	// each point at most once per hook.
	RunSweep(req RunnerRequest) error
}

// RunnerRequest is everything a SweepRunner needs to execute one job.
type RunnerRequest struct {
	// JobID is the server-assigned job ID — stable across restarts (the
	// journal preserves the ID space), so runners can key their own durable
	// state (e.g. lease journals) on it.
	JobID string
	// Kind is "characterise" or "sweep".
	Kind string
	// Specs are the job's points as pure data, in input order.
	Specs []PointSpec
	// Tok bounds the job: cancellation (the cancel endpoint, server
	// shutdown, a lease TTL expiry) and the job's wall-clock deadline both
	// arrive through it.
	Tok *budget.Token
	// Workers is the requested parallelism (already clamped server-side).
	Workers int
	// NoCache asks the runner to bypass result caches for this job.
	NoCache bool
	// OnSummary, when non-nil, streams per-point completions. At most one
	// call per point index; calls may arrive concurrently from multiple
	// worker streams — the server's handler is safe for concurrent use.
	OnSummary func(PointSummary)
	// OnResult, when non-nil, streams the loss-free per-point payloads. Same
	// delivery contract as OnSummary; the server spills each one to the
	// job's result file the moment it arrives.
	OnResult func(sweep.PointResult)
	// Span is the job's root span. Runners parent their own spans (lease
	// dispatch, attempts) under it and propagate Span.Context() over every
	// HTTP hop so worker-side spans join the same trace.
	Span *obs.Span
	// IngestTrace, when non-nil, folds span events collected from other
	// processes (worker trace pulls, coordinator-side flight dumps) into the
	// job's merged timeline. Safe for concurrent use; duplicate events are
	// deduplicated by (proc, span).
	IngestTrace func([]obs.Event)
}
