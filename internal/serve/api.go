package serve

import (
	"encoding/json"
	"time"

	"repro/internal/obs"
	"repro/internal/pll"
	"repro/internal/sweep"
)

// Job states, in lifecycle order. A job is terminal in exactly one of
// StateDone (the batch ran; individual points may still have failed),
// StateFailed (a job-level failure: resolution error or wall-clock budget
// exhausted) or StateCanceled (the cancel endpoint or server shutdown tripped
// the job's budget token).
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// PointSpec is one characterisation target as pure data: a registered model
// name plus parameter overrides (defaults fill the rest). Strictness is
// inherited from osc.Build — unknown models and unknown parameter names are
// rejected at submission, so a typo can never silently characterise the
// default model under a wrong cache key.
type PointSpec struct {
	// Name labels the point in results and events (default: the model name).
	Name  string `json:"name,omitempty"`
	Model string `json:"model"`
	// Params overrides the model's default parameters; see GET /v1/models.
	Params map[string]float64 `json:"params,omitempty"`
}

// CharacteriseRequest is the body of POST /v1/characterise: one point plus
// job-wide knobs.
type CharacteriseRequest struct {
	PointSpec
	// TimeoutMS bounds the job by wall clock from worker pickup; on expiry
	// in-flight work is cut off with a budget error (0 = unbounded).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the content-addressed result cache for this job (it
	// neither reads nor writes).
	NoCache bool `json:"no_cache,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: a batch of points run on one
// worker pool under one budget, sharing the retry ladder and the cache.
type SweepRequest struct {
	Points []PointSpec `json:"points"`
	// Workers bounds the per-job sweep pool (clamped to the server's cap).
	Workers   int   `json:"workers,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	NoCache   bool  `json:"no_cache,omitempty"`
	// LeaseTTLMS, when > 0, makes the job a lease: unless the submitter
	// renews it (POST /v1/jobs/{id}/renew) within every TTL window, the
	// worker cancels the job itself. A cluster coordinator sets this so a
	// worker orphaned by a coordinator crash or partition stops burning CPU
	// on points nobody will collect — they are in the shared result cache
	// for the reassigned lease anyway. The TTL survives worker restarts via
	// the job journal.
	LeaseTTLMS int64 `json:"lease_ttl_ms,omitempty"`
}

// PointSummary is the compact per-point outcome carried in job status and SSE
// events: the headline numbers without the orbit-sized payload. The full
// loss-free sweep.PointResult (trajectories, Floquet decomposition, retry
// history) is available from GET /v1/jobs/{id}?full=1.
type PointSummary struct {
	Index    int     `json:"index"`
	Name     string  `json:"name"`
	OK       bool    `json:"ok"`
	Cached   bool    `json:"cached,omitempty"`
	Degraded bool    `json:"degraded,omitempty"`
	T        float64 `json:"period_s,omitempty"`
	F0       float64 `json:"f0_hz,omitempty"`
	C        float64 `json:"c_s2hz,omitempty"`
	CornerHz float64 `json:"corner_hz,omitempty"`
	Attempts int     `json:"attempts,omitempty"`
	WallMS   float64 `json:"wall_ms"`
	// Error keeps its budget/panic classification across the wire: decode the
	// job JSON with this package's types and errors.Is against the pipeline
	// sentinels still works (see sweep.RemoteError).
	Error *sweep.RemoteError `json:"error,omitempty"`
}

// Summarize compacts one point result into the wire summary exactly as the
// server does for its own status payloads and events. Runners (the cluster
// coordinator's in-process fallback) use it so a locally computed point is
// indistinguishable from a served one in the SSE stream.
func Summarize(r *sweep.PointResult) PointSummary { return summarize(r) }

// summarize compacts one point result for status payloads and events.
func summarize(r *sweep.PointResult) PointSummary {
	s := PointSummary{
		Index:    r.Index,
		Name:     r.Name,
		OK:       r.OK(),
		Cached:   r.Cached,
		Degraded: r.Degraded(),
		Attempts: len(r.Attempts),
		WallMS:   float64(r.Wall) / float64(time.Millisecond),
		Error:    sweep.EncodeError(r.Err),
	}
	if r.OK() {
		s.T = r.Result.T()
		s.F0 = r.Result.F0()
		s.C = r.Result.C
		s.CornerHz = r.Result.CornerFreq()
	} else if r.PSS != nil {
		s.T = r.PSS.T // degraded: shooting converged, so the period is known
	}
	return s
}

// JobStatus is the response of the submit endpoints and GET /v1/jobs/{id}.
type JobStatus struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"` // "characterise", "sweep" or "compose"
	State  string `json:"state"`
	Points int    `json:"points"`
	// Progress counters; Done counts terminal points (ok or failed), Cached
	// the subset served from the result cache without running the pipeline.
	DonePoints   int `json:"done_points"`
	CachedPoints int `json:"cached_points"`
	FailedPoints int `json:"failed_points"`
	// Error is the job-level failure (budget trip, resolution error); per-
	// point failures live in Results. Kind-tagged like PointSummary.Error.
	Error  *sweep.RemoteError `json:"error,omitempty"`
	WallMS float64            `json:"wall_ms,omitempty"`
	// Results holds the per-point summaries completed so far (terminal jobs:
	// all of them, in input order).
	Results []PointSummary `json:"results,omitempty"`
	// Full holds the loss-free per-point results, only with ?full=1 on a
	// terminal job; round-trips through sweep.PointResult's JSON codec.
	Full []sweep.PointResult `json:"full_results,omitempty"`
	// Compose is the composition summary of a "compose" job once the chain
	// composed; ComposeResult the full mask/breakdown/realization, only with
	// ?full=1.
	Compose       *ComposeSummary `json:"compose,omitempty"`
	ComposeResult *pll.Result     `json:"compose_result,omitempty"`
}

// ResultsPage is the response of GET /v1/jobs/{id}/results: one page of the
// job's loss-free per-point results, served straight from the spill file so a
// client can page through a 10⁵-point sweep without the server (or the
// response) ever materialising the whole result set. Each element of Results
// is the exact JSON encoding of one sweep.PointResult, byte-identical to the
// ?full=1 codec.
type ResultsPage struct {
	JobID string `json:"job_id"`
	State string `json:"state"`
	// Total is the job's point count; Spilled how many results are currently
	// readable from the spill file (== Total for a healthy terminal job).
	Total   int `json:"total"`
	Spilled int `json:"spilled"`
	Offset  int `json:"offset"`
	// NextOffset is the offset of the next page, absent on the last one.
	NextOffset *int `json:"next_offset,omitempty"`
	// Degraded flags a job whose spill file failed (disk full, I/O error):
	// summaries remain available but some or all loss-free results are gone.
	Degraded bool              `json:"degraded,omitempty"`
	Results  []json.RawMessage `json:"results"`
}

// TraceStage aggregates one span name across the timeline — where the job's
// wall clock went, per pipeline stage.
type TraceStage struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// TraceProc aggregates one process's contribution to the timeline — which
// node the time was spent on.
type TraceProc struct {
	Proc    string  `json:"proc"`
	Spans   int     `json:"spans"`
	TotalMS float64 `json:"total_ms"`
}

// JobTrace is the response of GET /v1/jobs/{id}/trace: the job's merged
// distributed timeline (coordinator, worker, and in-process spans under one
// trace ID) plus per-stage and per-process latency rollups. Spans are in
// arrival order; order them by StartNS per Proc for a timeline view (clocks
// are only comparable within one process). Dropped counts events discarded
// once the per-job buffer filled.
type JobTrace struct {
	JobID   string       `json:"job_id"`
	TraceID string       `json:"trace_id"`
	Spans   []obs.Event  `json:"spans"`
	Stages  []TraceStage `json:"stages,omitempty"`
	Procs   []TraceProc  `json:"procs,omitempty"`
	Dropped int          `json:"dropped,omitempty"`
}

// WorkerStatus is one worker node's health as the coordinator sees it.
type WorkerStatus struct {
	URL          string `json:"url"`
	Healthy      bool   `json:"healthy"`
	Quarantined  bool   `json:"quarantined,omitempty"`
	Breaker      string `json:"breaker"` // closed, open, half-open
	ActiveLeases int    `json:"active_leases"`
}

// LeaseStatus is one in-flight lease: which worker holds which point range of
// which job, on which attempt, and for how long.
type LeaseStatus struct {
	JobID   string  `json:"job_id"`
	Lease   int     `json:"lease"`
	Attempt int     `json:"attempt"`
	Worker  string  `json:"worker"`
	Points  int     `json:"points"`
	AgeMS   float64 `json:"age_ms"`
}

// ClusterStatus is the response of GET /v1/cluster/status: the live fleet
// view. Every node answers with its own queue/job numbers; Workers and Leases
// are filled only on a coordinator (Coordinator reports which).
type ClusterStatus struct {
	Coordinator bool           `json:"coordinator"`
	Draining    bool           `json:"draining"`
	QueueDepth  int            `json:"queue_depth"`
	RunningJobs int            `json:"running_jobs"`
	Workers     []WorkerStatus `json:"workers,omitempty"`
	Leases      []LeaseStatus  `json:"leases,omitempty"`
}

// ModelInfo describes one registered model for GET /v1/models.
type ModelInfo struct {
	Name     string             `json:"name"`
	Defaults map[string]float64 `json:"defaults"`
	// NoiseSources are the model's noise-source labels under default
	// parameters — the names a compose leg's "sources" selector accepts.
	NoiseSources []string `json:"noise_sources,omitempty"`
	NumNoise     int      `json:"num_noise"`
}

// Health is the GET /healthz payload.
type Health struct {
	OK       bool `json:"ok"`
	Draining bool `json:"draining"`
	Queued   int  `json:"queued"`
	Running  int  `json:"running"`
}

// errorBody is the JSON error envelope for non-2xx responses.
type errorBody struct {
	Error string `json:"error"`
}
