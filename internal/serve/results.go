package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/sweep"
)

// The result store is the journal's sibling for payloads: where the WAL makes
// a job's *lifecycle* durable, the spill file makes its *results* durable and
// memory-bounded. Every completed sweep.PointResult streams out of OnPoint
// into an append-only, length-prefixed file (<dir>/results/<id>.pnr) the
// moment it completes, so the server never retains a per-job O(points) result
// slice — a 10⁵-point sweep holds open one file descriptor and a 12-byte
// in-memory index entry per point, nothing else. Retrieval (status ?full=1,
// paginated /results, streaming /results.jsonl) reads frames straight back
// off disk, including for journal-recovered jobs: the spill file survives a
// SIGKILL alongside the WAL and is re-indexed on open with the same
// torn-tail tolerance as journal replay.
//
// File format, all integers big-endian:
//
//	8-byte magic "pnresv1\n"
//	repeated frames: [u32 payload length][u32 point index][payload]
//
// where payload is exactly sweep.PointResult.MarshalJSON's output — the
// loss-free codec — so streamed retrieval is byte-identical to what the
// in-memory path used to serve. Fsync discipline matches the WAL: the header
// reaches stable storage at create, frames are plain appends (a crash loses
// at most the frame in flight; every earlier point survives), and seal —
// called when the job goes terminal — fsyncs the tail.
//
// Failure containment mirrors the journal too: a failed append (disk full,
// injected fault) flips the file to degraded — the job keeps running and
// settling normally, already-spilled frames stay readable, only the
// not-yet-spilled payloads are lost to summary-only service. A failed create
// degrades the whole job the same way. Results are an availability surface,
// never a correctness dependency.

// resultMagic heads every spill file; a file without it is not ours (or is a
// torn create) and is re-created from scratch.
const resultMagic = "pnresv1\n"

// resultFrameOverhead is the per-frame header: payload length + point index.
const resultFrameOverhead = 8

// maxResultFrame bounds one frame's payload; larger lengths in a file mean
// corruption (a torn or overwritten tail), not data.
const maxResultFrame = 1 << 28 // 256 MiB

// resultSubdir keeps spill files out of the journal replay walk.
const resultSubdir = "results"

// resultStore hands out per-job spill files under one directory. A nil store
// (creation failed) degrades every job to summary-only; all methods are
// nil-safe, mirroring the journal.
type resultStore struct {
	dir string
	own bool // dir is a temp dir this store created; close removes it
}

// newResultStore places the store under journalDir/results when journalling
// is on — spill files then live next to the WALs they complement and survive
// restarts with them. Without a journal the store falls back to a private
// temp directory: results are still memory-bounded and streamable, they just
// die with the process like the jobs themselves. Returns nil (summary-only
// service) only when no directory can be created at all.
func newResultStore(journalDir string) *resultStore {
	if journalDir != "" {
		dir := filepath.Join(journalDir, resultSubdir)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			serveMetrics.Get().resultErrors.Inc()
			return nil
		}
		return &resultStore{dir: dir}
	}
	dir, err := os.MkdirTemp("", "pnserve-results-")
	if err != nil {
		serveMetrics.Get().resultErrors.Inc()
		return nil
	}
	return &resultStore{dir: dir, own: true}
}

// path maps a job ID to its spill file, with the same path-hostility guard as
// the journal ("" = unmappable).
func (rs *resultStore) path(id string) string {
	if rs == nil || id == "" || len(id) > 64 || containsPathHostile(id) {
		return ""
	}
	return filepath.Join(rs.dir, id+".pnr")
}

// open creates (or reopens, for journal recovery and resumed jobs) the spill
// file for a job of n points, scanning any existing frames into the index
// with torn tails truncated. Returns nil when the store is unavailable or
// the file cannot be opened — the job then runs summary-only.
func (rs *resultStore) open(id string, n int) *resultFile {
	p := rs.path(id)
	if p == "" || n <= 0 {
		return nil
	}
	m := serveMetrics.Get()
	f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		m.resultErrors.Inc()
		m.resultDegraded.Inc()
		return nil
	}
	rf := &resultFile{f: f, path: p, offsets: make([]int64, n), lengths: make([]int32, n)}
	for i := range rf.offsets {
		rf.offsets[i] = -1
	}
	if err := rf.scan(); err != nil {
		m.resultErrors.Inc()
		m.resultDegraded.Inc()
		f.Close()
		return nil
	}
	return rf
}

// openExisting reopens a spill file only if it already exists on disk —
// terminal-job recovery attaches whatever survived the crash without minting
// empty files for jobs journalled before the result store existed.
func (rs *resultStore) openExisting(id string, n int) *resultFile {
	p := rs.path(id)
	if p == "" {
		return nil
	}
	if _, err := os.Stat(p); err != nil {
		return nil
	}
	return rs.open(id, n)
}

// remove deletes a job's spill file (eviction, discarded submissions).
func (rs *resultStore) remove(id string) {
	if p := rs.path(id); p != "" {
		os.Remove(p)
	}
}

// close releases the store; a temp-dir store removes its directory.
func (rs *resultStore) close() {
	if rs != nil && rs.own {
		os.RemoveAll(rs.dir)
	}
}

// resultFile is one job's spill file plus its in-memory frame index. Methods
// are safe for concurrent use (the cluster runner delivers results from
// several worker streams at once) and nil-safe (a degraded or store-less job
// carries a nil file).
type resultFile struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	offsets  []int64 // payload byte offset per point index; -1 = not spilled
	lengths  []int32 // payload byte length per point index
	n        int     // frames present
	size     int64   // append position
	degraded bool    // an append failed: summary-only from here on
	sealed   bool
}

// scan validates the magic and indexes every complete frame, truncating the
// file at the first torn or corrupt one — exactly the journal's replay
// stance: keep every record that fully landed, drop the tail that did not.
// An empty or magic-less file is (re)initialised with a fsync'd header.
func (rf *resultFile) scan() error {
	info, err := rf.f.Stat()
	if err != nil {
		return err
	}
	var hdr [len(resultMagic)]byte
	if info.Size() >= int64(len(resultMagic)) {
		if _, err := rf.f.ReadAt(hdr[:], 0); err != nil {
			return err
		}
	}
	if string(hdr[:]) != resultMagic {
		// New file (or a torn create that never finished its header): start
		// clean. The header is fsync'd before any frame can follow it, the
		// same barrier the WAL puts before its 202.
		if err := rf.f.Truncate(0); err != nil {
			return err
		}
		if _, err := rf.f.WriteAt([]byte(resultMagic), 0); err != nil {
			return err
		}
		if err := rf.f.Sync(); err != nil {
			return err
		}
		rf.size = int64(len(resultMagic))
		return nil
	}
	off := int64(len(resultMagic))
	var fh [resultFrameOverhead]byte
	for {
		if off+resultFrameOverhead > info.Size() {
			break // torn frame header (or clean EOF)
		}
		if _, err := rf.f.ReadAt(fh[:], off); err != nil {
			break
		}
		plen := int64(binary.BigEndian.Uint32(fh[0:4]))
		idx := int(binary.BigEndian.Uint32(fh[4:8]))
		if plen <= 0 || plen > maxResultFrame || idx < 0 || idx >= len(rf.offsets) {
			break // corrupt header: truncate from here
		}
		if off+resultFrameOverhead+plen > info.Size() {
			break // torn payload
		}
		if rf.offsets[idx] < 0 {
			rf.offsets[idx] = off + resultFrameOverhead
			rf.lengths[idx] = int32(plen)
			rf.n++
		}
		off += resultFrameOverhead + plen
	}
	if off < info.Size() {
		if err := rf.f.Truncate(off); err != nil {
			return err
		}
		serveMetrics.Get().replayCorrupt.Inc()
	}
	rf.size = off
	return nil
}

// append spills one completed point. First writer per index wins — a resumed
// job re-reports pre-crash points, and the cluster path can race a reassigned
// lease against its original; the frame already on disk is the one that was
// already served. raw must be the point's loss-free codec bytes. A write
// failure (disk full, injected fault) degrades the file: the error is
// reported once, already-spilled frames stay readable, later appends no-op.
func (rf *resultFile) append(idx int, raw []byte) error {
	if rf == nil {
		return nil
	}
	rf.mu.Lock()
	defer rf.mu.Unlock()
	if idx < 0 || idx >= len(rf.offsets) || rf.offsets[idx] >= 0 || rf.degraded || rf.sealed {
		return nil
	}
	m := serveMetrics.Get()
	if err := faultinject.Fire(faultinject.ServeResultsWrite); err != nil {
		rf.degraded = true
		m.resultErrors.Inc()
		m.resultDegraded.Inc()
		return err
	}
	frame := make([]byte, resultFrameOverhead+len(raw))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(raw)))
	binary.BigEndian.PutUint32(frame[4:8], uint32(idx))
	copy(frame[resultFrameOverhead:], raw)
	if _, err := rf.f.WriteAt(frame, rf.size); err != nil {
		// A partial frame may be on disk; rewind so a later reopen's scan
		// does not have to. Failure to truncate is fine — scan would drop
		// the torn tail anyway.
		_ = rf.f.Truncate(rf.size)
		rf.degraded = true
		m.resultErrors.Inc()
		m.resultDegraded.Inc()
		return err
	}
	rf.offsets[idx] = rf.size + resultFrameOverhead
	rf.lengths[idx] = int32(len(raw))
	rf.size += int64(len(frame))
	rf.n++
	m.resultSpilled.Inc()
	m.resultBytes.Add(int64(len(frame)))
	return nil
}

// appendResult encodes and spills one result.
func (rf *resultFile) appendResult(res *sweep.PointResult) error {
	if rf == nil {
		return nil
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return err
	}
	return rf.append(res.Index, raw)
}

// seal fsyncs the spilled frames once the job is terminal. The file handle
// stays open: retrieval keeps reading from it until eviction.
func (rf *resultFile) seal() {
	if rf == nil {
		return
	}
	rf.mu.Lock()
	defer rf.mu.Unlock()
	if rf.sealed {
		return
	}
	rf.sealed = true
	if err := rf.f.Sync(); err != nil {
		serveMetrics.Get().resultErrors.Inc()
	}
}

// closeFile releases the descriptor (eviction).
func (rf *resultFile) closeFile() {
	if rf == nil {
		return
	}
	rf.mu.Lock()
	defer rf.mu.Unlock()
	rf.f.Close()
}

// frame reads one point's raw codec bytes; (nil, nil) when the point has not
// been spilled. The read fault point fires per frame, so an injected read
// failure surfaces as a partial page, not a wedged store.
func (rf *resultFile) frame(idx int) ([]byte, error) {
	if rf == nil {
		return nil, nil
	}
	rf.mu.Lock()
	off := int64(-1)
	var n int32
	if idx >= 0 && idx < len(rf.offsets) {
		off, n = rf.offsets[idx], rf.lengths[idx]
	}
	rf.mu.Unlock()
	if off < 0 {
		return nil, nil
	}
	if err := faultinject.Fire(faultinject.ServeResultsRead); err != nil {
		serveMetrics.Get().resultErrors.Inc()
		return nil, err
	}
	buf := make([]byte, n)
	if _, err := rf.f.ReadAt(buf, off); err != nil {
		serveMetrics.Get().resultErrors.Inc()
		return nil, fmt.Errorf("results: reading frame %d: %w", idx, err)
	}
	return buf, nil
}

// snapshot reports (frames spilled, total points, degraded).
func (rf *resultFile) snapshot() (n, total int, degraded bool) {
	if rf == nil {
		return 0, 0, true
	}
	rf.mu.Lock()
	defer rf.mu.Unlock()
	return rf.n, len(rf.offsets), rf.degraded
}

// page collects the raw frames for point indices [offset, offset+limit) in
// index order, skipping never-spilled slots (each payload carries its own
// "index" field, so sparse pages stay self-describing). The returned error
// is the first read failure; frames collected before it are still returned.
func (rf *resultFile) page(offset, limit int) ([]json.RawMessage, error) {
	if rf == nil {
		return nil, nil
	}
	total := len(rf.offsets)
	if offset < 0 {
		offset = 0
	}
	end := offset + limit
	if limit <= 0 || end > total {
		end = total
	}
	out := make([]json.RawMessage, 0, max(0, end-offset))
	for i := offset; i < end; i++ {
		raw, err := rf.frame(i)
		if err != nil {
			return out, err
		}
		if raw != nil {
			out = append(out, json.RawMessage(raw))
		}
	}
	return out, nil
}

// writeJSONL streams every spilled frame to w, one codec line per point in
// index order — the loss-free download path that replaces shipping the whole
// result set in one ?full=1 body. Returns the first write or read error.
func (rf *resultFile) writeJSONL(w io.Writer) error {
	if rf == nil {
		return errors.New("results: no spill file for this job")
	}
	for i := 0; i < len(rf.offsets); i++ {
		raw, err := rf.frame(i)
		if err != nil {
			return err
		}
		if raw == nil {
			continue
		}
		if _, err := w.Write(append(raw, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// decodeAll rebuilds the loss-free []sweep.PointResult from the spill file —
// the ?full=1 payload, now served from disk for live and journal-recovered
// jobs alike. Only complete sets are returned: a degraded or partially
// spilled job answers nil (summary-only), matching the old in-memory
// contract where Full was all-or-nothing.
func (rf *resultFile) decodeAll() []sweep.PointResult {
	if rf == nil {
		return nil
	}
	n, total, _ := rf.snapshot()
	if n != total {
		return nil
	}
	out := make([]sweep.PointResult, total)
	for i := 0; i < total; i++ {
		raw, err := rf.frame(i)
		if err != nil || raw == nil {
			return nil
		}
		if json.Unmarshal(raw, &out[i]) != nil {
			return nil
		}
	}
	return out
}
