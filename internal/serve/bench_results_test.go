package serve

import (
	"bytes"
	"fmt"
	"testing"
)

// BenchmarkResultSpill measures the result store's hot path: one op spills a
// 256-point job frame by frame (append + index update, no fsync — that
// happens once per job at seal) and pages the whole set back, which is what
// a client draining /results.jsonl costs the server. The payload size is in
// the ballpark of a small characterisation result; large payloads are pure
// disk bandwidth on top of the same fixed cost per frame.
func BenchmarkResultSpill(b *testing.B) {
	rs := &resultStore{dir: b.TempDir()}
	payload := bytes.Repeat([]byte(`{"k":0123456789}`), 256) // 4 KiB
	const frames = 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// File creation fsyncs a header once per job; that one-off (and the
		// cleanup) would drown the per-frame cost in disk-latency noise, so
		// only the frame traffic is on the clock.
		b.StopTimer()
		id := fmt.Sprintf("bench%d", i)
		rf := rs.open(id, frames)
		if rf == nil {
			b.Fatal("open failed")
		}
		b.StartTimer()
		for k := 0; k < frames; k++ {
			if err := rf.append(k, payload); err != nil {
				b.Fatal(err)
			}
		}
		pg, err := rf.page(0, frames)
		if err != nil || len(pg) != frames {
			b.Fatalf("page: %d frames, %v", len(pg), err)
		}
		b.StopTimer()
		rf.closeFile()
		rs.remove(id)
		b.StartTimer()
	}
}
