package serve

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/osc"
	"repro/internal/shooting"
	"repro/internal/sweep"
)

// validate builds the model once to surface unknown-model/unknown-parameter
// errors at submission time, before the job queues.
func (p PointSpec) validate() error {
	_, err := osc.Build(p.Model, p.Params)
	return err
}

// RoutingKey returns the point's content-addressed cache key without running
// period estimation — the same "pnfp1" fingerprint Resolve stamps on the
// sweep point, cheap enough to compute for every point of a large sweep. The
// cluster coordinator hashes it onto the worker ring so identical points
// always land on (and cache-hit at) the same node. Invalid specs fall back to
// a name-derived key: routing stays total, and the worker rejects the spec
// with a real error when the lease arrives.
func (p PointSpec) RoutingKey() string {
	m, err := osc.Build(p.Model, p.Params)
	if err != nil {
		return "pnfp1:invalid:" + p.Model + ":" + p.Name
	}
	var opts *core.Options
	if m.ShootingSteps > 0 {
		opts = &core.Options{Shooting: &shooting.Options{StepsPerPeriod: m.ShootingSteps}}
	}
	return cache.CharacterisationKey(p.Model, m.Params, m.X0, m.TGuess, opts.FingerprintFields())
}

// Resolve turns a pure-data point spec into a runnable sweep point: it builds
// the model, estimates the period over the registry's transient horizon when
// no closed form exists (under tok, so a canceled job never burns the
// integration), applies the model's recommended solver options, and stamps
// the content-addressed cache key.
//
// The key is computed from the registry recommendation (resolved params, the
// recommended X0 and period guess, the effective solver knobs) BEFORE period
// estimation, so a resubmit of an estimate-based model addresses the same
// result without depending on the estimator's output. CLIs building points by
// hand must use cache.CharacterisationKey with the same inputs to share a
// disk cache with the server.
func (p PointSpec) Resolve(tok *budget.Token) (sweep.Point, error) {
	m, err := osc.Build(p.Model, p.Params)
	if err != nil {
		return sweep.Point{}, err
	}
	var opts *core.Options
	if m.ShootingSteps > 0 {
		opts = &core.Options{Shooting: &shooting.Options{StepsPerPeriod: m.ShootingSteps}}
	}
	key := cache.CharacterisationKey(p.Model, m.Params, m.X0, m.TGuess, opts.FingerprintFields())

	x0, tGuess := m.X0, m.TGuess
	if tGuess == 0 {
		tGuess, x0, err = shooting.EstimatePeriodBudget(m.Sys, m.X0, m.EstimateTMax, tok)
		if err != nil {
			return sweep.Point{}, fmt.Errorf("model %q: period estimation: %w", p.Model, err)
		}
	}
	name := p.Name
	if name == "" {
		name = p.Model
	}
	return sweep.Point{
		Name:   name,
		System: m.Sys,
		X0:     x0,
		TGuess: tGuess,
		Opts:   opts,
		Key:    key,
	}, nil
}
