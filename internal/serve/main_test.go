package serve

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the suite if any test leaks a goroutine — workers that
// outlive Shutdown, event-stream subscribers blocked past job completion,
// budget-token forwarders never released, journal replayers that don't stop.
func TestMain(m *testing.M) { leakcheck.Main(m) }
