// Package cliobs wires the observability layer (internal/obs) into the
// command-line tools: one flag set shared by pnsweep and pnchar
// (-debug-addr, -cpuprofile, -memprofile, -trace-out) and a Start/stop pair
// that installs the process-wide metrics registry and span emitter, starts
// the /metrics + pprof debug server, and runs the CPU/heap profilers with
// proper shutdown ordering.
package cliobs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/obs"
)

// Flags holds the standard observability flag values.
type Flags struct {
	DebugAddr  string // serve /metrics and /debug/pprof on this address
	CPUProfile string // write a CPU profile to this file
	MemProfile string // write a heap profile to this file on shutdown
	TraceOut   string // append span events as JSON lines to this file
}

// Register installs the standard observability flags on fs (use
// flag.CommandLine for a CLI's default set) and returns the value holder.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "serve /metrics and /debug/pprof/* on this address (e.g. :6060; empty = off)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&f.TraceOut, "trace-out", "", "append pipeline span events as JSON lines to this file")
	return f
}

// Enabled reports whether any observability feature was requested.
func (f *Flags) Enabled() bool {
	return f.DebugAddr != "" || f.CPUProfile != "" || f.MemProfile != "" || f.TraceOut != ""
}

// Start activates everything the flags request and returns a stop function
// that must run before process exit (call it via defer from a run() helper,
// not from a main that os.Exits). With no flags set, Start is a no-op and the
// pipeline keeps its allocation-free fast path.
func (f *Flags) Start() (stop func(), err error) {
	var stops []func()
	stop = func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	fail := func(e error) (func(), error) {
		stop()
		return func() {}, e
	}

	if f.DebugAddr != "" {
		reg := obs.NewRegistry()
		obs.SetGlobal(reg)
		srv, serr := obs.ServeDebug(f.DebugAddr, reg)
		if serr != nil {
			return fail(serr)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /debug/pprof/)\n", srv.Addr())
		stops = append(stops, func() { _ = srv.Close() })
	}

	if f.TraceOut != "" {
		tf, oerr := os.OpenFile(f.TraceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if oerr != nil {
			return fail(fmt.Errorf("trace-out: %w", oerr))
		}
		obs.SetEmitter(obs.NewJSONLEmitter(tf))
		stops = append(stops, func() {
			obs.SetEmitter(nil)
			_ = tf.Close()
		})
	}

	if f.CPUProfile != "" {
		cf, oerr := os.Create(f.CPUProfile)
		if oerr != nil {
			return fail(fmt.Errorf("cpuprofile: %w", oerr))
		}
		if perr := pprof.StartCPUProfile(cf); perr != nil {
			_ = cf.Close()
			return fail(fmt.Errorf("cpuprofile: %w", perr))
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			_ = cf.Close()
		})
	}

	if f.MemProfile != "" {
		stops = append(stops, func() {
			mf, oerr := os.Create(f.MemProfile)
			if oerr != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", oerr)
				return
			}
			runtime.GC() // settle the heap so the profile reflects live objects
			if werr := pprof.WriteHeapProfile(mf); werr != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", werr)
			}
			_ = mf.Close()
		})
	}

	return stop, nil
}
