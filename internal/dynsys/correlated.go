package dynsys

import (
	"fmt"

	"repro/internal/linalg"
)

// Correlated wraps a System whose p noise sources are driven by CORRELATED
// unit-intensity white noise with correlation matrix K (E[b bᵀ] = K·δ):
// the paper's footnote 9 notes the extension is immediate, because the
// diffusion matrix becomes B·K·Bᵀ = (B·L)(B·L)ᵀ with K = L·Lᵀ, so the
// wrapped system simply presents the effective noise map B·L to the
// (uncorrelated-source) pipeline.
type Correlated struct {
	Base System
	L    *linalg.Matrix // Cholesky factor of the correlation matrix
}

// NewCorrelated validates the correlation matrix (symmetric positive
// definite, p×p) and returns the wrapped system.
func NewCorrelated(base System, corr *linalg.Matrix) (*Correlated, error) {
	p := base.NumNoise()
	if corr.Rows != p || corr.Cols != p {
		return nil, fmt.Errorf("dynsys: correlation matrix is %dx%d, want %dx%d", corr.Rows, corr.Cols, p, p)
	}
	l, err := linalg.Cholesky(corr)
	if err != nil {
		return nil, fmt.Errorf("dynsys: correlation matrix: %w", err)
	}
	return &Correlated{Base: base, L: l}, nil
}

// Dim implements System.
func (c *Correlated) Dim() int { return c.Base.Dim() }

// Eval implements System.
func (c *Correlated) Eval(x, dst []float64) { c.Base.Eval(x, dst) }

// Jacobian implements System.
func (c *Correlated) Jacobian(x []float64, dst []float64) { c.Base.Jacobian(x, dst) }

// NumNoise implements System.
func (c *Correlated) NumNoise() int { return c.Base.NumNoise() }

// Noise implements System: returns B(x)·L so that the effective diffusion
// matrix is B·K·Bᵀ.
func (c *Correlated) Noise(x []float64, dst []float64) {
	n := c.Base.Dim()
	p := c.Base.NumNoise()
	raw := make([]float64, n*p)
	c.Base.Noise(x, raw)
	// dst = raw · L (row-major n×p times p×p lower-triangular).
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			s := 0.0
			for k := j; k < p; k++ { // L is lower triangular: L[k][j] ≠ 0 for k ≥ j
				s += raw[i*p+k] * c.L.At(k, j)
			}
			dst[i*p+j] = s
		}
	}
}

// NoiseLabels implements System. The mixed columns no longer map one-to-one
// onto physical sources, so the labels are tagged.
func (c *Correlated) NoiseLabels() []string {
	base := c.Base.NoiseLabels()
	out := make([]string, len(base))
	for i, l := range base {
		out[i] = l + " (correlated-mix)"
	}
	return out
}
