package dynsys

import (
	"math"
	"testing"
)

func TestColoredValidation(t *testing.T) {
	base := &spiral{a: -1, b: 3}
	if _, err := NewColored(base, []ColoredSource{{Index: 5, Tau: 1, Sigma: 1}}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := NewColored(base, []ColoredSource{{Index: 0, Tau: 0, Sigma: 1}}); err == nil {
		t.Fatal("zero correlation time accepted")
	}
	if _, err := NewColored(base, []ColoredSource{
		{Index: 0, Tau: 1, Sigma: 1}, {Index: 0, Tau: 2, Sigma: 1},
	}); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestColoredDimensions(t *testing.T) {
	base := &spiral{a: -1, b: 3}
	c, err := NewColored(base, []ColoredSource{{Index: 1, Tau: 0.5, Sigma: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Dim() != 3 || c.NumNoise() != 2 {
		t.Fatalf("dim %d noise %d", c.Dim(), c.NumNoise())
	}
	labels := c.NoiseLabels()
	if labels[0] != "s1" || labels[1] != "s2 (OU-colored)" {
		t.Fatalf("labels %v", labels)
	}
	x := c.AugmentState([]float64{1, 2})
	if len(x) != 3 || x[2] != 0 {
		t.Fatalf("augment %v", x)
	}
}

func TestColoredEvalInjection(t *testing.T) {
	// With the OU state z nonzero, the colored column's injection must
	// appear in the base equations scaled by σ·z.
	base := &spiral{a: -1, b: 3}
	c, err := NewColored(base, []ColoredSource{{Index: 1, Tau: 0.5, Sigma: 2}})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.4, -0.2, 0.7} // z = 0.7
	dst := make([]float64, 3)
	c.Eval(x, dst)
	want := make([]float64, 2)
	base.Eval(x[:2], want)
	// Base column 1 = (0, 2)ᵀ, injection = 2(column)·2(σ)·0.7 on state 1.
	if math.Abs(dst[0]-want[0]) > 1e-12 {
		t.Fatalf("state 0 affected: %g vs %g", dst[0], want[0])
	}
	if math.Abs(dst[1]-(want[1]+2*2*0.7)) > 1e-12 {
		t.Fatalf("state 1 injection: %g", dst[1])
	}
	// OU relaxation: ż = −z/τ.
	if math.Abs(dst[2]-(-0.7/0.5)) > 1e-12 {
		t.Fatalf("OU state: %g", dst[2])
	}
}

func TestColoredJacobianMatchesFiniteDifference(t *testing.T) {
	base := &spiral{a: -0.5, b: 2}
	c, err := NewColored(base, []ColoredSource{{Index: 0, Tau: 0.3, Sigma: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	if d := CheckJacobian(c, []float64{0.2, -0.6, 0.1}); d > 1e-5 {
		t.Fatalf("colored jacobian mismatch %g", d)
	}
}

func TestColoredNoiseRouting(t *testing.T) {
	base := &spiral{a: -1, b: 3}
	c, err := NewColored(base, []ColoredSource{{Index: 0, Tau: 0.5, Sigma: 1}})
	if err != nil {
		t.Fatal(err)
	}
	bm := make([]float64, 3*2)
	c.Noise([]float64{0, 0, 0}, bm)
	// Column 0 is rerouted to the OU state with magnitude √(2/τ) = 2.
	if bm[0*2+0] != 0 || bm[1*2+0] != 0 {
		t.Fatal("colored column still drives base states")
	}
	if math.Abs(bm[2*2+0]-2) > 1e-12 {
		t.Fatalf("OU excitation %g, want 2", bm[2*2+0])
	}
	// Column 1 untouched: base column (0, 2)ᵀ, zero on the OU row.
	if bm[0*2+1] != 0 || bm[1*2+1] != 2 || bm[2*2+1] != 0 {
		t.Fatalf("white column routing: %v", bm)
	}
}

func TestColoredOUStationaryVarianceConvention(t *testing.T) {
	// ż = −z/τ + √(2/τ)·ξ with unit-intensity ξ has stationary variance 1,
	// so σ scales the low-frequency intensity of the delivered source:
	// S_z(0)·σ² = 2τ·σ²… sanity-check the diffusion entries instead:
	// D_zz = 2/τ and relaxation 1/τ ⇒ Var = D/(2·rate) = 1. Verified via
	// the coefficients used in Noise and Eval above.
	tau := 0.25
	base := &spiral{a: -1, b: 3}
	c, err := NewColored(base, []ColoredSource{{Index: 0, Tau: tau, Sigma: 1}})
	if err != nil {
		t.Fatal(err)
	}
	bm := make([]float64, 3*2)
	c.Noise([]float64{0, 0, 0}, bm)
	dzz := bm[2*2+0] * bm[2*2+0]
	dst := make([]float64, 3)
	c.Eval([]float64{0, 0, 1}, dst)
	rate := -dst[2] // = 1/τ
	if v := dzz / (2 * rate); math.Abs(v-1) > 1e-12 {
		t.Fatalf("OU stationary variance %g, want 1", v)
	}
}
