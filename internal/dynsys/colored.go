package dynsys

import (
	"fmt"
	"math"
)

// ColoredSource describes one noise input of the base system that should be
// driven by colored (Ornstein–Uhlenbeck-filtered) rather than white noise:
// the source's intensity process z obeys ż = −z/τ + √(2/τ)·σ·ξ(t), giving
// a Lorentzian-shaped source spectrum of corner 1/(2πτ) and total (flat-band
// equivalent) intensity σ² at low frequency.
type ColoredSource struct {
	Index int     // which base noise column this replaces
	Tau   float64 // correlation time (s)
	Sigma float64 // low-frequency intensity multiplier
}

// Colored augments a System so that selected noise columns are driven by
// OU-filtered noise, staying entirely inside the paper's white-noise
// framework: the OU states join the state vector (they relax to zero on the
// unperturbed limit cycle, adding Floquet exponents −1/τ), and the only
// white inputs are the OU excitations plus the untouched original columns.
//
// This is the standard rigorous treatment of colored/low-frequency noise in
// oscillators — near-carrier spectra acquire the corresponding extra slope
// while the theory's machinery (v1, c) applies unchanged to the augmented
// system.
type Colored struct {
	Base    System
	Sources []ColoredSource

	colored map[int]int // base column → index in Sources
}

// NewColored validates and builds the augmented system.
func NewColored(base System, sources []ColoredSource) (*Colored, error) {
	p := base.NumNoise()
	colored := map[int]int{}
	for i, s := range sources {
		if s.Index < 0 || s.Index >= p {
			return nil, fmt.Errorf("dynsys: colored source index %d out of range (p=%d)", s.Index, p)
		}
		if s.Tau <= 0 {
			return nil, fmt.Errorf("dynsys: colored source %d needs positive correlation time", i)
		}
		if _, dup := colored[s.Index]; dup {
			return nil, fmt.Errorf("dynsys: duplicate colored source for column %d", s.Index)
		}
		colored[s.Index] = i
	}
	return &Colored{Base: base, Sources: sources, colored: colored}, nil
}

// Dim implements System: base states plus one OU state per colored source.
func (c *Colored) Dim() int { return c.Base.Dim() + len(c.Sources) }

// NumNoise implements System: the white-noise inputs are the original
// untouched columns plus one OU excitation per colored source.
func (c *Colored) NumNoise() int { return c.Base.NumNoise() }

// Eval implements System.
func (c *Colored) Eval(x, dst []float64) {
	nb := c.Base.Dim()
	pb := c.Base.NumNoise()
	c.Base.Eval(x[:nb], dst[:nb])
	// The colored sources inject B_col(x)·z into the base equations.
	b := make([]float64, nb*pb)
	c.Base.Noise(x[:nb], b)
	for j, s := range c.Sources {
		z := x[nb+j]
		for i := 0; i < nb; i++ {
			dst[i] += b[i*pb+s.Index] * s.Sigma * z
		}
		dst[nb+j] = -z / s.Tau
	}
}

// Jacobian implements System.
func (c *Colored) Jacobian(x []float64, dst []float64) {
	n := c.Dim()
	nb := c.Base.Dim()
	pb := c.Base.NumNoise()
	for i := range dst[:n*n] {
		dst[i] = 0
	}
	jb := make([]float64, nb*nb)
	c.Base.Jacobian(x[:nb], jb)
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			dst[i*n+j] = jb[i*nb+j]
		}
	}
	// ∂/∂z of the injected term: B_col(x)·σ. (The ∂B/∂x·z cross terms are
	// second order on the limit cycle where z = 0 and are omitted — exact
	// for state-independent noise maps.)
	b := make([]float64, nb*pb)
	c.Base.Noise(x[:nb], b)
	for j, s := range c.Sources {
		for i := 0; i < nb; i++ {
			dst[i*n+nb+j] = b[i*pb+s.Index] * s.Sigma
		}
		dst[(nb+j)*n+nb+j] = -1 / s.Tau
	}
}

// Noise implements System: white columns for the untouched base sources
// (zero rows for the OU states), and √(2/τ) excitations for the OU states.
func (c *Colored) Noise(x []float64, dst []float64) {
	n := c.Dim()
	nb := c.Base.Dim()
	p := c.NumNoise()
	for i := range dst[:n*p] {
		dst[i] = 0
	}
	b := make([]float64, nb*c.Base.NumNoise())
	c.Base.Noise(x[:nb], b)
	for j := 0; j < c.Base.NumNoise(); j++ {
		if ci, isColored := c.colored[j]; isColored {
			// The white input drives the OU state instead of the circuit.
			dst[(nb+ci)*p+j] = math.Sqrt(2 / c.Sources[ci].Tau)
			continue
		}
		for i := 0; i < nb; i++ {
			dst[i*p+j] = b[i*c.Base.NumNoise()+j]
		}
	}
}

// NoiseLabels implements System.
func (c *Colored) NoiseLabels() []string {
	base := c.Base.NoiseLabels()
	out := make([]string, len(base))
	for j, l := range base {
		if _, isColored := c.colored[j]; isColored {
			out[j] = l + " (OU-colored)"
		} else {
			out[j] = l
		}
	}
	return out
}

// AugmentState extends a base-state vector with zero OU states (the
// on-cycle values), convenient for seeding shooting on the augmented
// system.
func (c *Colored) AugmentState(xbase []float64) []float64 {
	out := make([]float64, c.Dim())
	copy(out, xbase)
	return out
}
