package dynsys

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

// spiral is a 2-state linear test system with one noise source per state.
type spiral struct{ a, b float64 }

func (s *spiral) Dim() int { return 2 }
func (s *spiral) Eval(x, dst []float64) {
	dst[0] = s.a*x[0] - s.b*x[1]
	dst[1] = s.b*x[0] + s.a*x[1]
}
func (s *spiral) Jacobian(x []float64, dst []float64) {
	dst[0], dst[1] = s.a, -s.b
	dst[2], dst[3] = s.b, s.a
}
func (s *spiral) NumNoise() int { return 2 }
func (s *spiral) Noise(x []float64, dst []float64) {
	dst[0], dst[1] = 1, 0
	dst[2], dst[3] = 0, 2
}
func (s *spiral) NoiseLabels() []string { return []string{"s1", "s2"} }

func TestCheckJacobianCatchesErrors(t *testing.T) {
	good := &spiral{a: -0.5, b: 2}
	if d := CheckJacobian(good, []float64{0.3, -0.7}); d > 1e-6 {
		t.Fatalf("good jacobian flagged: %g", d)
	}
	// A deliberately wrong Jacobian must be caught.
	bad := &FiniteDiffSystem{N: 2, F: good.Eval}
	wrong := make([]float64, 4)
	bad.Jacobian([]float64{0.3, -0.7}, wrong)
	wrong[0] += 1 // corrupt
	// CheckJacobian on a wrapper that reports the corrupted one:
	w := &jacOverride{System: good, jac: wrong}
	if d := CheckJacobian(w, []float64{0.3, -0.7}); d < 0.5 {
		t.Fatalf("corrupted jacobian not caught: %g", d)
	}
}

type jacOverride struct {
	System
	jac []float64
}

func (j *jacOverride) Jacobian(x []float64, dst []float64) { copy(dst, j.jac) }

func TestFiniteDiffSystemDefaults(t *testing.T) {
	fd := &FiniteDiffSystem{N: 2, F: (&spiral{a: 1, b: 1}).Eval, P: 3}
	if got := fd.NoiseLabels(); len(got) != 3 || got[0] != "source0" {
		t.Fatalf("labels %v", got)
	}
	b := make([]float64, 6)
	fd.Noise(nil, b) // nil B ⇒ zeros
	for _, v := range b {
		if v != 0 {
			t.Fatal("nil B should produce zeros")
		}
	}
}

func TestCorrelatedIdentityIsNoop(t *testing.T) {
	base := &spiral{a: -1, b: 3}
	c, err := NewCorrelated(base, linalg.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]float64, 4)
	mixed := make([]float64, 4)
	base.Noise(nil, raw)
	c.Noise(nil, mixed)
	for i := range raw {
		if raw[i] != mixed[i] {
			t.Fatalf("identity correlation changed B: %v vs %v", raw, mixed)
		}
	}
	if c.Dim() != 2 || c.NumNoise() != 2 {
		t.Fatal("dims")
	}
}

func TestCorrelatedDiffusionMatrix(t *testing.T) {
	// The effective diffusion B·K·Bᵀ must equal (B·L)(B·L)ᵀ.
	base := &spiral{a: -1, b: 3}
	k := linalg.NewMatrixFrom(2, 2, []float64{
		1, 0.6,
		0.6, 2,
	})
	c, err := NewCorrelated(base, k)
	if err != nil {
		t.Fatal(err)
	}
	braw := linalg.NewMatrix(2, 2)
	base.Noise(nil, braw.Data)
	bmix := linalg.NewMatrix(2, 2)
	c.Noise(nil, bmix.Data)
	want := braw.Mul(k).Mul(braw.T())
	got := bmix.Mul(bmix.T())
	for i := range want.Data {
		if math.Abs(want.Data[i]-got.Data[i]) > 1e-12 {
			t.Fatalf("diffusion mismatch:\n%v\nvs\n%v", want, got)
		}
	}
}

func TestCorrelatedRejectsBadMatrices(t *testing.T) {
	base := &spiral{a: -1, b: 3}
	if _, err := NewCorrelated(base, linalg.Identity(3)); err == nil {
		t.Fatal("wrong size accepted")
	}
	notSPD := linalg.NewMatrixFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, −1
	if _, err := NewCorrelated(base, notSPD); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
	asym := linalg.NewMatrixFrom(2, 2, []float64{1, 0.5, 0, 1})
	if _, err := NewCorrelated(base, asym); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
}

func TestCorrelatedLabelsTagged(t *testing.T) {
	base := &spiral{a: -1, b: 3}
	c, err := NewCorrelated(base, linalg.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range c.NoiseLabels() {
		if len(l) < 5 {
			t.Fatalf("label %q", l)
		}
	}
}

func TestNoiseHelperValues(t *testing.T) {
	// Physical sanity: a 50 Ω resistor at room temperature has one-sided
	// 4kT/R ≈ 3.3e-22 A²/Hz; our two-sided column squared is half that.
	in := ThermalCurrentNoise(50, RoomTempK)
	if in*in < 1.5e-22 || in*in > 1.8e-22 {
		t.Fatalf("2kT/R for 50Ω = %g", in*in)
	}
}
