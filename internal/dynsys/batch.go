package dynsys

import "fmt"

// BatchEvaluator evaluates K parameter variants ("lanes") of one model
// family in lockstep over structure-of-arrays buffers: component i of lane k
// lives at index i*K+k of an [n×K] buffer, and Jacobian entry (i,j) of lane
// k at (i*n+j)*K+k of an [n²×K] buffer. Implementations must produce, for
// every lane, bit-identical values to the corresponding scalar System —
// batching is a layout change, never a numerical one.
type BatchEvaluator interface {
	// Dim returns the per-lane state dimension n.
	Dim() int
	// Lanes returns the batch width K.
	Lanes() int
	// EvalBatch writes f(x_k) for every lane into dst (SoA [n×K]).
	EvalBatch(x, dst []float64)
	// JacobianBatch writes ∂f/∂x at x_k for every lane into jac (SoA [n²×K]).
	JacobianBatch(x, jac []float64)
}

// LaneBatch adapts K scalar Systems into a BatchEvaluator by
// gathering each lane into contiguous scratch, calling the scalar model, and
// scattering the result back. It is the universal fallback when no native
// SoA implementation of a model exists: per-lane results are trivially
// bit-identical to the scalar path, at the cost of 2·n·K extra moves per
// evaluation. Not safe for concurrent use (shared scratch).
type LaneBatch struct {
	systems []System
	n       int
	xk, fk  []float64
	jk      []float64
}

// NewLaneBatch builds a LaneBatch over the given systems, which must all
// share one state dimension.
func NewLaneBatch(systems []System) (*LaneBatch, error) {
	if len(systems) == 0 {
		return nil, fmt.Errorf("dynsys: LaneBatch of zero systems")
	}
	n := systems[0].Dim()
	for i, s := range systems {
		if s.Dim() != n {
			return nil, fmt.Errorf("dynsys: LaneBatch dimension mismatch: system 0 has n=%d, system %d has n=%d", n, i, s.Dim())
		}
	}
	return &LaneBatch{
		systems: systems,
		n:       n,
		xk:      make([]float64, n),
		fk:      make([]float64, n),
		jk:      make([]float64, n*n),
	}, nil
}

// Dim implements BatchEvaluator.
func (b *LaneBatch) Dim() int { return b.n }

// Lanes implements BatchEvaluator.
func (b *LaneBatch) Lanes() int { return len(b.systems) }

// EvalBatch implements BatchEvaluator.
func (b *LaneBatch) EvalBatch(x, dst []float64) {
	n, lanes := b.n, len(b.systems)
	for k, s := range b.systems {
		for i := 0; i < n; i++ {
			b.xk[i] = x[i*lanes+k]
		}
		s.Eval(b.xk, b.fk)
		for i := 0; i < n; i++ {
			dst[i*lanes+k] = b.fk[i]
		}
	}
}

// JacobianBatch implements BatchEvaluator.
func (b *LaneBatch) JacobianBatch(x, jac []float64) {
	n, lanes := b.n, len(b.systems)
	for k, s := range b.systems {
		for i := 0; i < n; i++ {
			b.xk[i] = x[i*lanes+k]
		}
		s.Jacobian(b.xk, b.jk)
		for i := 0; i < n*n; i++ {
			jac[i*lanes+k] = b.jk[i]
		}
	}
}
