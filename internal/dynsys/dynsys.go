// Package dynsys defines the autonomous-oscillator model interface used by
// the whole phase-noise pipeline: ẋ = f(x) with a noise-injection map B(x)
// so that the perturbed system is ẋ = f(x) + B(x)·b(t) (paper Eq. 2).
package dynsys

import (
	"fmt"
	"math"
)

// System is an autonomous dynamical system ẋ = f(x) with a state-dependent
// noise map B(x) ∈ R^{n×p} that couples p unit-intensity perturbation
// sources into the state equations.
type System interface {
	// Dim returns the state dimension n.
	Dim() int
	// Eval writes f(x) into dst (len n).
	Eval(x, dst []float64)
	// Jacobian writes ∂f/∂x at x into dst (n×n row-major).
	Jacobian(x []float64, dst []float64)
	// NumNoise returns the number of noise columns p.
	NumNoise() int
	// Noise writes B(x) into dst (n×p row-major). Columns are scaled so
	// that B Bᵀ is the two-sided diffusion matrix (unit-intensity sources).
	Noise(x []float64, dst []float64)
	// NoiseLabels names the p sources (for per-source budgets).
	NoiseLabels() []string
}

// FiniteDiffSystem wraps a bare vector field with a central-difference
// Jacobian and (optionally) a noise map; convenient for user-defined models
// that do not supply analytic derivatives.
type FiniteDiffSystem struct {
	N      int
	F      func(x, dst []float64)
	B      func(x []float64, dst []float64) // may be nil ⇒ no noise
	P      int                              // noise columns (0 if B nil)
	Labels []string
}

// Dim implements System.
func (s *FiniteDiffSystem) Dim() int { return s.N }

// Eval implements System.
func (s *FiniteDiffSystem) Eval(x, dst []float64) { s.F(x, dst) }

// Jacobian implements System by central differences.
func (s *FiniteDiffSystem) Jacobian(x []float64, dst []float64) {
	n := s.N
	xp := make([]float64, n)
	fp := make([]float64, n)
	fm := make([]float64, n)
	for j := 0; j < n; j++ {
		h := 1e-7 * (1 + math.Abs(x[j]))
		copy(xp, x)
		xp[j] = x[j] + h
		s.F(xp, fp)
		xp[j] = x[j] - h
		s.F(xp, fm)
		inv := 1 / (2 * h)
		for i := 0; i < n; i++ {
			dst[i*n+j] = (fp[i] - fm[i]) * inv
		}
	}
}

// NumNoise implements System.
func (s *FiniteDiffSystem) NumNoise() int { return s.P }

// Noise implements System.
func (s *FiniteDiffSystem) Noise(x []float64, dst []float64) {
	if s.B == nil {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	s.B(x, dst)
}

// NoiseLabels implements System.
func (s *FiniteDiffSystem) NoiseLabels() []string {
	if s.Labels != nil {
		return s.Labels
	}
	out := make([]string, s.P)
	for i := range out {
		out[i] = fmt.Sprintf("source%d", i)
	}
	return out
}

// CheckJacobian compares a system's analytic Jacobian against central
// differences at x and returns the max absolute discrepancy; used in tests
// to catch hand-derivation mistakes in device models.
func CheckJacobian(s System, x []float64) float64 {
	n := s.Dim()
	analytic := make([]float64, n*n)
	s.Jacobian(x, analytic)
	fd := &FiniteDiffSystem{N: n, F: s.Eval}
	numeric := make([]float64, n*n)
	fd.Jacobian(x, numeric)
	maxd := 0.0
	for i := range analytic {
		if d := math.Abs(analytic[i] - numeric[i]); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// Physical constants used by the device noise models.
const (
	BoltzmannK = 1.380649e-23 // J/K
	ElectronQ  = 1.602176634e-19
	RoomTempK  = 300.0
)

// ThermalCurrentNoise returns the unit-intensity column magnitude for the
// thermal (Johnson) current noise of a resistor R at temperature tempK:
// two-sided PSD 2kT/R ⇒ column √(2kT/R) (A·s^{-1/2} when injected as a
// current).
func ThermalCurrentNoise(r, tempK float64) float64 {
	return math.Sqrt(2 * BoltzmannK * tempK / r)
}

// ThermalVoltageNoise returns √(2kT·R), the two-sided voltage-noise column
// for a series resistance R.
func ThermalVoltageNoise(r, tempK float64) float64 {
	return math.Sqrt(2 * BoltzmannK * tempK * r)
}

// ShotNoise returns √(q·|I|), the two-sided shot-noise column for a junction
// carrying current I.
func ShotNoise(i float64) float64 {
	return math.Sqrt(ElectronQ * math.Abs(i))
}
