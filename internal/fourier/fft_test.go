package fourier

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func cClose(a, b complex128, eps float64) bool {
	return cmplx.Abs(a-b) <= eps*(1+cmplx.Abs(a)+cmplx.Abs(b))
}

// Naive O(N²) DFT as the oracle.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		s := complex(0, 0)
		for j := 0; j < n; j++ {
			s += x[j] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*j)/float64(n)))
		}
		out[k] = s
	}
	return out
}

func TestFFTMatchesNaiveDFTPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got := FFT(x)
		want := naiveDFT(x)
		for k := range got {
			if !cClose(got[k], want[k], 1e-10) {
				t.Fatalf("n=%d k=%d: %v vs %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestFFTMatchesNaiveDFTArbitraryN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 6, 7, 12, 100, 97} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got := FFT(x)
		want := naiveDFT(x)
		for k := range got {
			if !cClose(got[k], want[k], 1e-9) {
				t.Fatalf("n=%d k=%d: %v vs %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 8, 15, 33, 128} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := IFFT(FFT(x))
		for k := range x {
			if !cClose(y[k], x[k], 1e-10) {
				t.Fatalf("n=%d roundtrip failed at %d: %v vs %v", n, k, y[k], x[k])
			}
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	x := make([]complex128, 8)
	x[0] = 1
	y := FFT(x)
	for k := range y {
		if !cClose(y[k], 1, 1e-12) {
			t.Fatalf("impulse spectrum not flat: %v", y)
		}
	}
}

func TestFFTSinusoidPeak(t *testing.T) {
	// A pure tone at bin 5 should concentrate all energy there.
	n := 64
	x := make([]float64, n)
	for k := range x {
		x[k] = math.Cos(2 * math.Pi * 5 * float64(k) / float64(n))
	}
	spec := FFTReal(x)
	if cmplx.Abs(spec[5]) < float64(n)/2-1e-9 {
		t.Fatalf("|X[5]| = %g, want %g", cmplx.Abs(spec[5]), float64(n)/2)
	}
	for k := 0; k <= n/2; k++ {
		if k != 5 && cmplx.Abs(spec[k]) > 1e-9 {
			t.Fatalf("leakage at bin %d: %g", k, cmplx.Abs(spec[k]))
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{16, 30} {
		x := make([]complex128, n)
		tsum := 0.0
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			tsum += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		y := FFT(x)
		fsum := 0.0
		for _, v := range y {
			fsum += real(v)*real(v) + imag(v)*imag(v)
		}
		fsum /= float64(n)
		if math.Abs(tsum-fsum) > 1e-9*(1+tsum) {
			t.Fatalf("Parseval n=%d: %g vs %g", n, tsum, fsum)
		}
	}
}

func TestSeriesCoefficientsSinusoid(t *testing.T) {
	// x(t) = 3 + 2cos(ω0 t) + 0.5 sin(2 ω0 t):
	// X0=3, X1 = 1 (cos→(X1+X−1)/...), X±1 = 1, X±2 = ∓0.25i.
	n := 256
	samples := make([]float64, n)
	for k := range samples {
		th := 2 * math.Pi * float64(k) / float64(n)
		samples[k] = 3 + 2*math.Cos(th) + 0.5*math.Sin(2*th)
	}
	c := SeriesCoefficients(samples, 3)
	nh := 3
	if !cClose(c[nh+0], 3, 1e-10) {
		t.Fatalf("X0 = %v", c[nh])
	}
	if !cClose(c[nh+1], 1, 1e-10) || !cClose(c[nh-1], 1, 1e-10) {
		t.Fatalf("X±1 = %v, %v", c[nh+1], c[nh-1])
	}
	if !cClose(c[nh+2], complex(0, -0.25), 1e-10) || !cClose(c[nh-2], complex(0, 0.25), 1e-10) {
		t.Fatalf("X±2 = %v, %v", c[nh+2], c[nh-2])
	}
	if !cClose(c[nh+3], 0, 1e-10) {
		t.Fatalf("X3 = %v, want 0", c[nh+3])
	}
}

func TestSeriesConjugateSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	samples := make([]float64, 100)
	for k := range samples {
		samples[k] = rng.NormFloat64()
	}
	c := SeriesCoefficients(samples, 10)
	nh := 10
	for i := 1; i <= nh; i++ {
		if !cClose(c[nh+i], cmplx.Conj(c[nh-i]), 1e-10) {
			t.Fatalf("X%d != conj(X−%d): %v vs %v", i, i, c[nh+i], cmplx.Conj(c[nh-i]))
		}
	}
}

func TestSynthesizeRoundTrip(t *testing.T) {
	// Band-limited waveform should be reproduced exactly by its series.
	n := 128
	omega0 := 2 * math.Pi / 0.01 // T = 10 ms
	wave := func(tt float64) float64 {
		return 1.5*math.Cos(omega0*tt) - 0.7*math.Sin(3*omega0*tt) + 0.2
	}
	samples := make([]float64, n)
	for k := range samples {
		samples[k] = wave(0.01 * float64(k) / float64(n))
	}
	c := SeriesCoefficients(samples, 5)
	for _, tt := range []float64{0, 0.0013, 0.0047, 0.0099} {
		got := SynthesizeSeries(c, omega0, tt)
		if math.Abs(got-wave(tt)) > 1e-9 {
			t.Fatalf("synth(%g) = %g, want %g", tt, got, wave(tt))
		}
	}
}

func TestHarmonicPower(t *testing.T) {
	n := 64
	samples := make([]float64, n)
	for k := range samples {
		samples[k] = 2 * math.Cos(2*math.Pi*float64(k)/float64(n))
	}
	p := HarmonicPower(SeriesCoefficients(samples, 2))
	if math.Abs(p[1]-1) > 1e-10 { // X1 = 1 → |X1|² = 1
		t.Fatalf("|X1|² = %g, want 1", p[1])
	}
	if p[0] > 1e-12 || p[2] > 1e-12 {
		t.Fatalf("spurious harmonic power: %v", p)
	}
}

func TestSeriesCoefficientsNyquistGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nh >= N/2")
		}
	}()
	SeriesCoefficients(make([]float64, 8), 4)
}

// Property: linearity of the FFT.
func TestQuickFFTLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		x := make([]complex128, n)
		y := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a*x[i] + y[i]
		}
		fx, fy, fs := FFT(x), FFT(y), FFT(sum)
		for k := range fs {
			if !cClose(fs[k], a*fx[k]+fy[k], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: time shift ↔ phase twist.
func TestQuickFFTShiftTheorem(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		shift := rng.Intn(n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		shifted := make([]complex128, n)
		for i := range x {
			shifted[i] = x[(i+shift)%n]
		}
		fx, fsh := FFT(x), FFT(shifted)
		for k := range fx {
			tw := cmplx.Exp(complex(0, 2*math.Pi*float64(k*shift)/float64(n)))
			if !cClose(fsh[k], fx[k]*tw, 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
