// Package fourier provides the spectral tools for phase-noise analysis:
// a complex FFT (iterative radix-2 plus Bluestein's algorithm for arbitrary
// lengths), Fourier-series extraction for periodic steady-state waveforms,
// and periodogram/Welch power-spectral-density estimators for Monte-Carlo
// validation of the Lorentzian theory.
package fourier

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the discrete Fourier transform of x:
// X[k] = Σ_n x[n]·exp(−2πi·kn/N). The input is not modified. Any length is
// supported (radix-2 lengths use Cooley–Tukey directly; others use
// Bluestein's chirp-z algorithm).
func FFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n == 0 {
		return out
	}
	if n&(n-1) == 0 {
		fftRadix2(out, false)
		return out
	}
	return bluestein(out, false)
}

// IFFT returns the inverse DFT with 1/N normalisation, so IFFT(FFT(x)) == x.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n == 0 {
		return out
	}
	if n&(n-1) == 0 {
		fftRadix2(out, true)
	} else {
		out = bluestein(out, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// FFTReal transforms a real sequence (convenience wrapper).
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	if len(x) == 0 {
		return c
	}
	if len(x)&(len(x)-1) == 0 {
		fftRadix2(c, false)
		return c
	}
	return bluestein(c, false)
}

// fftRadix2 performs an in-place iterative radix-2 Cooley–Tukey transform.
// inverse selects the conjugate transform (no normalisation).
func fftRadix2(a []complex128, inverse bool) {
	n := len(a)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wstep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wstep
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform,
// reducing it to a radix-2 convolution.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign·iπk²/n). Use k² mod 2n to stay accurate for large k.
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := int64(k) * int64(k) % int64(2*n)
		w[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(kk)/float64(n)))
	}
	// Convolution length: next power of two ≥ 2n−1.
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		b[k] = cmplx.Conj(w[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(w[k])
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2(a, true)
	invm := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invm * w[k]
	}
	return out
}

// SeriesCoefficients computes Fourier-series coefficients X_i of a real
// T-periodic waveform sampled uniformly at N points over one period
// (samples[k] = x(k·T/N)), for harmonics i = −nh..nh:
//
//	x(t) = Σ_i X_i exp(j·i·ω0·t),  ω0 = 2π/T.
//
// The returned slice has length 2·nh+1 with index i+nh holding X_i, and
// satisfies X_{−i} = conj(X_i) for real input.
func SeriesCoefficients(samples []float64, nh int) []complex128 {
	n := len(samples)
	if nh >= n/2 {
		panic("fourier: requested harmonics exceed Nyquist")
	}
	spec := FFTReal(samples)
	out := make([]complex128, 2*nh+1)
	inv := complex(1/float64(n), 0)
	for i := -nh; i <= nh; i++ {
		idx := i
		if idx < 0 {
			idx += n
		}
		out[i+nh] = spec[idx] * inv
	}
	return out
}

// SynthesizeSeries evaluates x(t) = Σ_i X_i exp(j·i·ω0·t) at time t for
// coefficients laid out as returned by SeriesCoefficients.
func SynthesizeSeries(coeffs []complex128, omega0, t float64) float64 {
	nh := (len(coeffs) - 1) / 2
	s := complex(0, 0)
	for i := -nh; i <= nh; i++ {
		s += coeffs[i+nh] * cmplx.Exp(complex(0, float64(i)*omega0*t))
	}
	return real(s)
}

// HarmonicPower returns |X_i|² for i = 0..nh from a coefficient slice laid
// out as in SeriesCoefficients.
func HarmonicPower(coeffs []complex128) []float64 {
	nh := (len(coeffs) - 1) / 2
	out := make([]float64, nh+1)
	for i := 0; i <= nh; i++ {
		c := coeffs[i+nh]
		out[i] = real(c)*real(c) + imag(c)*imag(c)
	}
	return out
}
