package fourier

import "math"

// Window is a taper applied before periodogram estimation.
type Window int

const (
	// Rectangular applies no taper.
	Rectangular Window = iota
	// Hann applies the raised-cosine taper (good sidelobe suppression).
	Hann
	// Hamming applies the Hamming taper.
	Hamming
)

func windowValue(w Window, k, n int) float64 {
	switch w {
	case Hann:
		return 0.5 * (1 - math.Cos(2*math.Pi*float64(k)/float64(n-1)))
	case Hamming:
		return 0.54 - 0.46*math.Cos(2*math.Pi*float64(k)/float64(n-1))
	default:
		return 1
	}
}

// Periodogram estimates the single-sided PSD of a real signal sampled at
// rate fs, returning frequencies f[0..n/2] and estimates S(f) such that
// Σ S·Δf ≈ mean power (periodogram normalisation 2|X|²/(fs·U·N) with window
// power U). The DC and Nyquist bins are not doubled.
func Periodogram(x []float64, fs float64, w Window) (freqs, psd []float64) {
	n := len(x)
	if n < 2 {
		panic("fourier: periodogram needs at least 2 samples")
	}
	tapered := make([]float64, n)
	u := 0.0
	for k := 0; k < n; k++ {
		wv := windowValue(w, k, n)
		tapered[k] = x[k] * wv
		u += wv * wv
	}
	u /= float64(n)
	spec := FFTReal(tapered)
	nb := n/2 + 1
	freqs = make([]float64, nb)
	psd = make([]float64, nb)
	norm := 1 / (fs * u * float64(n))
	for k := 0; k < nb; k++ {
		re, im := real(spec[k]), imag(spec[k])
		p := (re*re + im*im) * norm
		if k != 0 && !(n%2 == 0 && k == n/2) {
			p *= 2 // fold negative frequencies into the single-sided density
		}
		freqs[k] = fs * float64(k) / float64(n)
		psd[k] = p
	}
	return freqs, psd
}

// Welch estimates the single-sided PSD by averaging periodograms of
// 50%-overlapping segments of length nseg. Reduces estimator variance at the
// cost of frequency resolution.
func Welch(x []float64, fs float64, nseg int, w Window) (freqs, psd []float64) {
	if nseg < 2 || nseg > len(x) {
		panic("fourier: invalid Welch segment length")
	}
	hop := nseg / 2
	if hop == 0 {
		hop = 1
	}
	count := 0
	for start := 0; start+nseg <= len(x); start += hop {
		f, p := Periodogram(x[start:start+nseg], fs, w)
		if psd == nil {
			freqs = f
			psd = make([]float64, len(p))
		}
		for i := range p {
			psd[i] += p[i]
		}
		count++
	}
	if count == 0 {
		return Periodogram(x, fs, w)
	}
	for i := range psd {
		psd[i] /= float64(count)
	}
	return freqs, psd
}

// EnsemblePSD averages single-sided periodograms across an ensemble of
// equal-length signals, emulating a spectrum analyzer's trace averaging.
func EnsemblePSD(signals [][]float64, fs float64, w Window) (freqs, psd []float64) {
	if len(signals) == 0 {
		panic("fourier: empty ensemble")
	}
	for _, s := range signals {
		f, p := Periodogram(s, fs, w)
		if psd == nil {
			freqs = f
			psd = make([]float64, len(p))
		}
		for i := range p {
			psd[i] += p[i]
		}
	}
	for i := range psd {
		psd[i] /= float64(len(signals))
	}
	return freqs, psd
}

// TotalPower integrates a single-sided PSD over frequency with the
// trapezoidal rule, returning the mean-square signal power it represents.
func TotalPower(freqs, psd []float64) float64 {
	if len(freqs) != len(psd) || len(freqs) < 2 {
		panic("fourier: TotalPower needs matched slices with >= 2 points")
	}
	s := 0.0
	for k := 1; k < len(freqs); k++ {
		s += 0.5 * (psd[k] + psd[k-1]) * (freqs[k] - freqs[k-1])
	}
	return s
}
