package fourier

import (
	"math"
	"math/rand"
	"testing"
)

func TestPeriodogramWhiteNoiseLevel(t *testing.T) {
	// White noise with variance σ² sampled at fs has single-sided PSD 2σ²/fs
	// on average (two-sided σ²/fs). Check the average level.
	rng := rand.New(rand.NewSource(1))
	fs := 1000.0
	sigma := 2.0
	n := 1 << 14
	x := make([]float64, n)
	for i := range x {
		x[i] = sigma * rng.NormFloat64()
	}
	freqs, psd := Periodogram(x, fs, Rectangular)
	mean := 0.0
	for k := 1; k < len(psd)-1; k++ {
		mean += psd[k]
	}
	mean /= float64(len(psd) - 2)
	want := 2 * sigma * sigma / fs
	if math.Abs(mean-want) > 0.15*want {
		t.Fatalf("white-noise PSD level %g, want %g", mean, want)
	}
	if freqs[len(freqs)-1] != fs/2 {
		t.Fatalf("last frequency %g, want Nyquist %g", freqs[len(freqs)-1], fs/2)
	}
}

func TestPeriodogramParsevalPower(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fs := 500.0
	n := 1 << 12
	x := make([]float64, n)
	msq := 0.0
	for i := range x {
		x[i] = rng.NormFloat64()
		msq += x[i] * x[i]
	}
	msq /= float64(n)
	freqs, psd := Periodogram(x, fs, Rectangular)
	// Integrated PSD ≈ mean-square power.
	got := TotalPower(freqs, psd)
	if math.Abs(got-msq) > 0.05*msq {
		t.Fatalf("integrated PSD %g, mean square %g", got, msq)
	}
}

func TestPeriodogramTonePeak(t *testing.T) {
	fs := 1000.0
	n := 1 << 12
	f0 := fs * 64 / float64(n) // exactly on a bin
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f0 * float64(i) / fs)
	}
	freqs, psd := Periodogram(x, fs, Rectangular)
	// Peak bin should be at f0.
	kmax := 0
	for k := range psd {
		if psd[k] > psd[kmax] {
			kmax = k
		}
	}
	if math.Abs(freqs[kmax]-f0) > fs/float64(n)/2 {
		t.Fatalf("peak at %g, want %g", freqs[kmax], f0)
	}
	// Power in the peak ≈ 1/2 (mean square of a unit sine).
	binw := fs / float64(n)
	if p := psd[kmax] * binw; math.Abs(p-0.5) > 0.05 {
		t.Fatalf("tone power %g, want 0.5", p)
	}
}

func TestWelchReducesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fs := 100.0
	n := 1 << 14
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	_, pFull := Periodogram(x, fs, Rectangular)
	_, pWelch := Welch(x, fs, 1024, Hann)
	varOf := func(p []float64) float64 {
		m, v := 0.0, 0.0
		for _, q := range p[1 : len(p)-1] {
			m += q
		}
		m /= float64(len(p) - 2)
		for _, q := range p[1 : len(p)-1] {
			v += (q - m) * (q - m)
		}
		return v / float64(len(p)-2) / (m * m) // relative variance
	}
	if varOf(pWelch) > varOf(pFull)/4 {
		t.Fatalf("Welch relative variance %g not ≪ periodogram %g", varOf(pWelch), varOf(pFull))
	}
}

func TestWelchPreservesLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fs := 1000.0
	sigma := 1.5
	x := make([]float64, 1<<14)
	for i := range x {
		x[i] = sigma * rng.NormFloat64()
	}
	_, psd := Welch(x, fs, 512, Hann)
	mean := 0.0
	for k := 1; k < len(psd)-1; k++ {
		mean += psd[k]
	}
	mean /= float64(len(psd) - 2)
	want := 2 * sigma * sigma / fs
	if math.Abs(mean-want) > 0.1*want {
		t.Fatalf("Welch level %g, want %g", mean, want)
	}
}

func TestEnsemblePSDAveraging(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fs := 100.0
	signals := make([][]float64, 20)
	for s := range signals {
		signals[s] = make([]float64, 256)
		for i := range signals[s] {
			signals[s][i] = rng.NormFloat64()
		}
	}
	freqs, psd := EnsemblePSD(signals, fs, Rectangular)
	if len(freqs) != 129 || len(psd) != 129 {
		t.Fatalf("unexpected lengths %d %d", len(freqs), len(psd))
	}
	mean := 0.0
	for k := 1; k < len(psd)-1; k++ {
		mean += psd[k]
	}
	mean /= float64(len(psd) - 2)
	want := 2.0 / fs
	if math.Abs(mean-want) > 0.2*want {
		t.Fatalf("ensemble level %g, want %g", mean, want)
	}
}

func TestWindowsNormalised(t *testing.T) {
	// Hann/Hamming windows must preserve broadband levels via the U factor:
	// compare white-noise levels across windows.
	rng := rand.New(rand.NewSource(6))
	x := make([]float64, 1<<13)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	level := func(w Window) float64 {
		_, psd := Periodogram(x, 1, w)
		m := 0.0
		for k := 1; k < len(psd)-1; k++ {
			m += psd[k]
		}
		return m / float64(len(psd)-2)
	}
	lr, lh, lm := level(Rectangular), level(Hann), level(Hamming)
	if math.Abs(lh-lr) > 0.1*lr || math.Abs(lm-lr) > 0.1*lr {
		t.Fatalf("window levels differ: rect=%g hann=%g hamming=%g", lr, lh, lm)
	}
}

func TestTotalPowerTrapezoid(t *testing.T) {
	freqs := []float64{0, 1, 2}
	psd := []float64{0, 2, 0}
	if got := TotalPower(freqs, psd); got != 2 {
		t.Fatalf("trapezoid = %g, want 2", got)
	}
}

func TestPeriodogramGuards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for single sample")
		}
	}()
	Periodogram([]float64{1}, 1, Rectangular)
}
